//! Calendar queue (R. Brown, 1988) — amortized `O(1)` event list.
//!
//! Events are hashed by due time into an array of day "buckets" spanning one
//! "year"; dequeue walks the calendar from the current day, popping events
//! whose time falls inside the current year. The bucket count and width
//! adapt to the queue size and event-time density, giving amortized `O(1)`
//! insert/pop on well-behaved workloads — the `O(1)` structure the paper
//! contrasts with `O(log n)` heaps (§3). Skewed event-time distributions
//! degrade it, which is exactly the "they all tend to behave different
//! depending on various parameters" caveat experiment E2 demonstrates.
//!
//! Bucket layout: each day is a [`DayRing`] — a plain sorted `Vec` with a
//! consumed-prefix offset — rather than a `VecDeque`. Events live
//! contiguously (one cache line holds several 32-byte pooled records),
//! popping is an index bump, and the consumed prefix is reclaimed by a
//! move-on-rotate compaction that costs `O(live)` only after `O(live)`
//! pops, keeping the amortized bucket-touch bound `O(1)` (asserted by the
//! resize-cycle regression test via [`CalendarQueue::touches`]).

use super::EventQueue;
use crate::event::ScheduledEvent;
use crate::time::SimTime;

/// One calendar day: a contiguous `Vec` of events sorted by `(time, seq)`
/// from `head` onward.
///
/// `events[..head]` is the consumed prefix — always `None`, left in place
/// by `pop_front` (which takes the value and bumps `head` in `O(1)`) and
/// physically reclaimed by a move-on-rotate compaction once it outweighs
/// the live tail, so reclamation costs `O(live)` only after `O(live)`
/// pops. The `Option` wrapper is what lets a pop move the event out
/// without shifting the tail or requiring `E: Default`; for the pooled
/// 32-byte record it costs no space (the niche fills padding).
#[derive(Debug)]
struct DayRing<E> {
    events: Vec<Option<ScheduledEvent<E>>>,
    head: usize,
}

/// Compact only prefixes at least this long (avoids memmove thrash on
/// short days).
const COMPACT_MIN: usize = 32;

impl<E> DayRing<E> {
    fn new() -> Self {
        DayRing {
            events: Vec::new(),
            head: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.events.len() - self.head
    }

    #[inline]
    fn front(&self) -> Option<&ScheduledEvent<E>> {
        self.events.get(self.head).and_then(|o| o.as_ref())
    }

    /// Iterates the live events in order.
    #[inline]
    fn live(&self) -> impl Iterator<Item = &ScheduledEvent<E>> {
        self.events[self.head..].iter().flatten()
    }

    /// Sorted insert into the live tail. The binary search runs over the
    /// live range only; the memmove it pays is bounded by the day length,
    /// which the width heuristic keeps O(1) on average.
    fn insert_sorted(&mut self, ev: ScheduledEvent<E>) {
        let live = &self.events[self.head..];
        let pos =
            self.head + live.partition_point(|x| x.as_ref().is_some_and(|x| x.key() <= ev.key()));
        self.events.insert(pos, Some(ev));
    }

    /// Pops the front of the live range in `O(1)`, compacting the consumed
    /// prefix once it outweighs the live tail (move-on-rotate).
    fn pop_front(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.events.get_mut(self.head)?.take()?;
        self.head += 1;
        if self.head == self.events.len() {
            self.events.clear();
            self.head = 0;
        } else if self.head >= COMPACT_MIN && 2 * self.head >= self.events.len() {
            self.events.drain(..self.head);
            self.head = 0;
        }
        Some(ev)
    }
}

/// Self-resizing calendar queue.
pub struct CalendarQueue<E> {
    /// One sorted day ring per day; length always a power of two.
    buckets: Vec<DayRing<E>>,
    /// Width of one day in simulated seconds.
    width: f64,
    /// Index of the day currently being dequeued.
    cursor: usize,
    /// Absolute day number the cursor is scanning. An event is due exactly
    /// when `day_of(t) <= day`, with `day_of` the same `t / width`
    /// truncation that buckets it — one rounding, shared by both sides.
    /// The alternative (a `bucket_top` bound accumulated with `+= width`)
    /// drifts: repeated addition of a width like 0.1 rounds differently
    /// from the division, and an event sitting exactly on a day boundary
    /// gets classified into the wrong day, breaking dequeue order.
    day: u64,
    /// Priority of the last dequeued event (dequeue lower bound).
    last_prio: f64,
    /// Total number of pending events.
    size: usize,
    /// Bucket-head inspections — the unit of calendar work. Exposed so
    /// tests can assert the amortized O(1) bound across resize cycles.
    touches: u64,
}

const INIT_BUCKETS: usize = 2;
const INIT_WIDTH: f64 = 1.0;
/// Resize sample size used to re-estimate bucket width (Brown's heuristic).
const SAMPLE: usize = 25;

impl<E> CalendarQueue<E> {
    /// Creates an empty calendar queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INIT_BUCKETS).map(|_| DayRing::new()).collect(),
            width: INIT_WIDTH,
            cursor: 0,
            day: 0,
            last_prio: 0.0,
            size: 0,
            touches: 0,
        }
    }

    /// Absolute day an event time belongs to — the single rounding that
    /// both bucketing and dueness checks share. Saturates at `u64::MAX`
    /// for times astronomically beyond the day width; the dequeue walk
    /// uses saturating day arithmetic so even a degenerate width only
    /// costs performance (everything lands in one sorted bucket), never
    /// order.
    #[inline]
    fn day_of(&self, t: f64) -> u64 {
        (t / self.width) as u64
    }

    #[inline]
    fn bucket_of(&self, t: f64) -> usize {
        (self.day_of(t) % self.buckets.len() as u64) as usize
    }

    /// Diagnostic: (nbuckets, width, max bucket len, nonempty buckets).
    pub fn debug_shape(&self) -> (usize, f64, usize, usize) {
        let maxb = self.buckets.iter().map(|b| b.len()).max().unwrap_or(0);
        let ne = self.buckets.iter().filter(|b| b.len() > 0).count();
        (self.buckets.len(), self.width, maxb, ne)
    }

    /// Cumulative bucket-head inspections (the calendar's unit of work).
    /// A healthy calendar performs `O(1)` of these per operation
    /// amortized, including across shrink/grow resize cycles.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Points the dequeue cursor at the day containing priority `t`.
    fn seek(&mut self, t: f64) {
        self.day = self.day_of(t);
        self.cursor = (self.day % self.buckets.len() as u64) as usize;
        self.last_prio = t;
    }

    /// Re-estimates the day width from a sample of the earliest events.
    fn estimate_width(&mut self) -> f64 {
        if self.size < 2 {
            return INIT_WIDTH;
        }
        // Collect the SAMPLE earliest event times: buckets are sorted, so
        // the union of each bucket's first SAMPLE entries contains the
        // global SAMPLE minima exactly. (Sampling fewer per bucket is a
        // trap: a transiently too-wide calendar concentrates events in a
        // handful of buckets, a sparse head sample then overestimates the
        // gaps, and the oversized width becomes self-reinforcing.)
        let mut times: Vec<f64> = self
            .buckets
            .iter()
            .flat_map(|b| b.live().take(SAMPLE).map(|ev| ev.time.seconds()))
            .collect();
        times.sort_by(f64::total_cmp);
        times.truncate(SAMPLE);
        if times.len() < 2 {
            return self.width;
        }
        let span = times[times.len() - 1] - times[0];
        let avg_gap = span / (times.len() - 1) as f64;
        if avg_gap <= 0.0 || !avg_gap.is_finite() {
            self.width
        } else {
            // Clamp against pathologically narrow days: with width below
            // ~1e-12 of the sampled magnitude, `t / width` overflows the
            // u64 day space and every event saturates into one day —
            // correct but O(n). The clamp keeps day numbers representable
            // for any time scale the sample actually exhibits.
            let scale = times[times.len() - 1].abs().max(f64::MIN_POSITIVE);
            (3.0 * avg_gap).max(scale * 1.0e-12)
        }
    }

    fn resize(&mut self, new_len: usize) {
        let new_width = self.estimate_width();
        let old = std::mem::take(&mut self.buckets);
        self.width = new_width;
        self.buckets = (0..new_len).map(|_| DayRing::new()).collect();
        let mut min_key: Option<(SimTime, u64)> = None;
        for mut b in old {
            for ev in b.events.drain(b.head..).flatten() {
                if min_key.is_none_or(|k| ev.key() < k) {
                    min_key = Some(ev.key());
                }
                let i = self.bucket_of(ev.time.seconds());
                self.touches += 1;
                self.buckets[i].insert_sorted(ev);
            }
        }
        if let Some((t, _)) = min_key {
            self.seek(t.seconds());
        }
    }

    /// Locates the globally minimal event (used when a full-year scan finds
    /// nothing in the current year — the "direct search" of Brown's paper).
    fn direct_search_min(&mut self) -> Option<(SimTime, u64)> {
        self.touches += self.buckets.len() as u64;
        self.buckets
            .iter()
            .filter_map(|b| b.front().map(|ev| ev.key()))
            .min()
    }

    /// Shrinks the calendar once the size heuristic says so; shared by the
    /// single-pop and run-pop paths.
    #[inline]
    fn maybe_shrink(&mut self) {
        if self.size > 0 && self.size < self.buckets.len() / 2 && self.buckets.len() > INIT_BUCKETS
        {
            let n = (self.buckets.len() / 2).max(INIT_BUCKETS);
            self.resize(n);
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        let t = ev.time.seconds();
        let i = self.bucket_of(t);
        self.touches += 1;
        self.buckets[i].insert_sorted(ev);
        self.size += 1;
        if t < self.last_prio {
            // earlier than the dequeue point: rewind the cursor
            self.seek(t);
        }
        if self.size > 2 * self.buckets.len() {
            let n = self.buckets.len() * 2;
            self.resize(n);
        }
    }

    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        if self.size == 0 {
            return None;
        }
        let n = self.buckets.len();
        for _ in 0..n {
            self.touches += 1;
            let due = self.buckets[self.cursor]
                .front()
                .is_some_and(|first| self.day_of(first.time.seconds()) <= self.day);
            if due {
                let Some(ev) = self.buckets[self.cursor].pop_front() else {
                    debug_assert!(false, "due bucket head vanished");
                    return None;
                };
                self.last_prio = ev.time.seconds();
                self.size -= 1;
                self.maybe_shrink();
                return Some(ev);
            }
            self.day = self.day.saturating_add(1);
            self.cursor = (self.day % n as u64) as usize;
        }
        // Nothing due this year: jump straight to the global minimum.
        let Some((t, _)) = self.direct_search_min() else {
            debug_assert!(false, "size > 0 but no events");
            return None;
        };
        self.seek(t.seconds());
        // The global minimum has time `t`, and every event with time `t`
        // hashes to the cursor's bucket, whose head is its `(time, seq)`
        // minimum — so the head of the cursor bucket is the global minimum.
        let bucket = &mut self.buckets[self.cursor];
        debug_assert_eq!(bucket.front().map(|ev| ev.time), Some(t));
        let Some(ev) = bucket.pop_front() else {
            debug_assert!(false, "cursor bucket head vanished after seek");
            return None;
        };
        self.last_prio = ev.time.seconds();
        self.size -= 1;
        self.maybe_shrink();
        Some(ev)
    }

    fn pop_run(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        let base = out.len();
        let Some(first) = self.pop_next(out) else {
            return 0;
        };
        // `pop_next` appended the ties first; rotate the head in front.
        out.push(first);
        out[base..].rotate_right(1);
        out.len() - base
    }

    fn pop_next(&mut self, ties: &mut Vec<ScheduledEvent<E>>) -> Option<ScheduledEvent<E>> {
        // Locate and pop the global minimum the usual way…
        let first = self.pop_min()?;
        let t = first.time;
        // …then drain its ties without re-walking the calendar: every
        // event with time `t` hashes to the same day, sits contiguously at
        // the cursor bucket's head, and is already `(time, seq)`-sorted.
        // (`pop_min` above cannot have advanced the cursor past them: it
        // popped at the cursor, and a shrink re-seeks to the minimum.)
        loop {
            let bucket = &mut self.buckets[self.cursor];
            self.touches += 1;
            if bucket.front().is_none_or(|ev| !ev.time.same_instant(t)) {
                break;
            }
            let Some(ev) = bucket.pop_front() else {
                debug_assert!(false, "tie head vanished");
                break;
            };
            self.last_prio = ev.time.seconds();
            ties.push(ev);
            self.size -= 1;
        }
        self.maybe_shrink();
        Some(first)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.size == 0 {
            return None;
        }
        // Fast path: earliest event in the cursor's day of this year.
        self.touches += 1;
        let bucket = &self.buckets[self.cursor];
        if let Some(first) = bucket.front() {
            if self.day_of(first.time.seconds()) <= self.day {
                return Some(first.time);
            }
        }
        self.direct_search_min().map(|(t, _)| t)
    }

    fn len(&self) -> usize {
        self.size
    }

    fn name(&self) -> &'static str {
        "calendar"
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;
    use lsds_stats::SimRng;

    #[test]
    fn fifo_same_time() {
        conformance::fifo_within_same_time(CalendarQueue::new());
    }

    #[test]
    fn ordered() {
        conformance::ordered_output(CalendarQueue::new(), 5000, 21);
    }

    #[test]
    fn hold() {
        conformance::interleaved_hold_model(CalendarQueue::new(), 22);
    }

    #[test]
    fn peek() {
        conformance::peek_agrees_with_pop(CalendarQueue::new(), 23);
    }

    #[test]
    fn empty() {
        conformance::empty_behaviour(CalendarQueue::<u32>::new());
    }

    #[test]
    fn clustered() {
        conformance::clustered_times(CalendarQueue::new(), 24);
    }

    #[test]
    fn run_pop() {
        conformance::pop_run_matches_pop_min(CalendarQueue::new(), CalendarQueue::new(), 25);
    }

    #[test]
    fn sparse_far_future_events() {
        // events many "years" apart exercise the direct-search path
        let mut q = CalendarQueue::new();
        for (s, t) in [(0u64, 1.0e6), (1, 3.0), (2, 5.0e9), (3, 7.0)] {
            q.insert(ScheduledEvent::new(SimTime::new(t), s, s));
        }
        assert_eq!(q.pop_min().unwrap().event, 1);
        assert_eq!(q.pop_min().unwrap().event, 3);
        assert_eq!(q.pop_min().unwrap().event, 0);
        assert_eq!(q.pop_min().unwrap().event, 2);
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn grows_and_shrinks() {
        let mut q = CalendarQueue::new();
        let mut rng = SimRng::new(7);
        for s in 0..10_000u64 {
            q.insert(ScheduledEvent::new(
                SimTime::new(rng.next_f64() * 100.0),
                s,
                s,
            ));
        }
        assert!(q.buckets.len() >= 1024, "should have grown");
        let mut last = SimTime::ZERO;
        for _ in 0..9_990 {
            let ev = q.pop_min().unwrap();
            assert!(ev.time >= last);
            last = ev.time;
        }
        assert!(
            q.buckets.len() <= 64,
            "should have shrunk, {} buckets",
            q.buckets.len()
        );
        assert_eq!(q.len(), 10);
    }

    impl<E> CalendarQueue<E> {
        /// Test-only: pin the calendar shape so a test can exercise a
        /// specific width without the adaptive resizing interfering.
        fn force_shape(&mut self, width: f64, nbuckets: usize) {
            assert_eq!(self.size, 0, "force_shape requires an empty queue");
            self.width = width;
            self.buckets = (0..nbuckets).map(|_| DayRing::new()).collect();
            self.cursor = 0;
            self.day = 0;
            self.last_prio = 0.0;
        }
    }

    /// Regression test for float drift at day boundaries: 0.1 is not
    /// exactly representable, so a `bucket_top += width` upper bound (or
    /// any bound computed separately from the bucketing division) rounds
    /// differently from `t / width`, and events sitting exactly on day
    /// boundaries get classified into the wrong day. The fixed queue
    /// decides dueness with the *same* `t / width` truncation that chose
    /// the bucket, keeping boundary events ordered across thousands of
    /// days.
    #[test]
    fn boundary_times_with_inexact_width_stay_ordered() {
        let mut q = CalendarQueue::new();
        q.force_shape(0.1, 1024);
        let mut rng = SimRng::new(41);
        // sparse events exactly on day boundaries, spanning many years
        let mut times: Vec<f64> = (0..900u64).map(|k| (k * 13) as f64 * 0.1).collect();
        rng.shuffle(&mut times);
        for (s, &t) in times.iter().enumerate() {
            q.insert(ScheduledEvent::new(SimTime::new(t), s as u64, s as u64));
        }
        let mut popped = Vec::with_capacity(times.len());
        while let Some(ev) = q.pop_min() {
            popped.push(ev.time.seconds());
        }
        times.sort_by(f64::total_cmp);
        assert_eq!(popped, times);
    }

    #[test]
    fn insert_earlier_than_cursor() {
        let mut q = CalendarQueue::new();
        for s in 0..100u64 {
            q.insert(ScheduledEvent::new(SimTime::new(50.0 + s as f64), s, s));
        }
        // consume some, then insert an earlier event
        for _ in 0..10 {
            q.pop_min();
        }
        q.insert(ScheduledEvent::new(SimTime::new(55.0), 1000, 999));
        let ev = q.pop_min().unwrap();
        assert_eq!(ev.event, 999);
    }

    /// Satellite regression for the resize heuristic: a bursty schedule
    /// (dense cluster) drained into a sparse tail and then re-burst forces
    /// shrink → grow → shrink width recomputations. The transient-too-wide
    /// trap (estimating width from a sparse head sample while events are
    /// concentrated in few buckets) would lock the calendar into an
    /// oversized width; the test asserts both total order and the
    /// amortized O(1) bucket-touch bound across the whole cycle.
    #[test]
    fn bursty_then_sparse_resize_cycle_stays_amortized_o1() {
        let mut q = CalendarQueue::new();
        let mut rng = SimRng::new(99);
        let mut seq = 0u64;
        let mut expect: Vec<(u64, u64)> = Vec::new(); // (time bits, seq)
        let mut push = |q: &mut CalendarQueue<u64>, expect: &mut Vec<(u64, u64)>, t: f64| {
            q.insert(ScheduledEvent::new(SimTime::new(t), seq, seq));
            expect.push((t.to_bits(), seq));
            seq += 1;
        };
        // phase 1: dense burst — 8k events in [1000, 1001)
        for _ in 0..8000 {
            push(&mut q, &mut expect, 1000.0 + rng.next_f64());
        }
        // phase 2: sparse far tail — 200 events spread over [2000, 1e6)
        for _ in 0..200 {
            push(&mut q, &mut expect, rng.range_f64(2000.0, 1.0e6));
        }
        let mut ops = (8200 + 8200) as u64; // inserts + pops so far
                                            // drain the burst (forces shrink resizes as size collapses)…
        let mut popped = Vec::new();
        for _ in 0..8000 {
            let ev = q.pop_min().unwrap();
            popped.push((ev.time.seconds().to_bits(), ev.event));
        }
        // …then re-burst while the sparse tail is still pending (forces a
        // grow cycle against a width estimated from the sparse survivors)
        for _ in 0..8000 {
            push(&mut q, &mut expect, 5000.0 + rng.next_f64());
        }
        ops += 2 * 8000;
        while let Some(ev) = q.pop_min() {
            popped.push((ev.time.seconds().to_bits(), ev.event));
        }
        expect.sort_unstable();
        assert_eq!(popped, expect, "dequeue order broke across resize cycle");
        // amortized O(1): bucket touches per operation stay bounded by a
        // small constant even through the shrink/grow/shrink cycle
        let per_op = q.touches() as f64 / ops as f64;
        assert!(
            per_op < 16.0,
            "calendar did {per_op:.1} bucket touches per op — amortized O(1) lost"
        );
    }

    /// A degenerate (near-zero) day width must only cost performance,
    /// never order or a panic: day numbers saturate and the calendar
    /// degrades to one sorted bucket until a resize re-estimates width.
    #[test]
    fn degenerate_width_saturates_safely() {
        let mut q = CalendarQueue::new();
        q.force_shape(1.0e-300, 2);
        for s in 0..64u64 {
            q.insert(ScheduledEvent::new(SimTime::new(1.0e6 - s as f64), s, s));
        }
        let mut last = 0.0;
        let mut n = 0;
        while let Some(ev) = q.pop_min() {
            assert!(ev.time.seconds() >= last);
            last = ev.time.seconds();
            n += 1;
        }
        assert_eq!(n, 64);
    }

    /// The width clamp itself: clustered times at large magnitude used to
    /// produce widths so narrow that `t / width` saturated for every
    /// event; the estimate now floors the width relative to the sampled
    /// magnitude so day numbers stay representable.
    #[test]
    fn width_estimate_clamps_against_day_overflow() {
        let mut q = CalendarQueue::new();
        // tight cluster (gaps ~1e-9) at t ≈ 1e9 — unclamped width would be
        // ~3e-9 and day_of(1e9) ≈ 3e17: representable, but a cluster at
        // gaps 1e-16 would not be. Use the adversarial scale directly.
        for s in 0..512u64 {
            let t = 1.0e9 + s as f64 * 1.0e-16;
            q.insert(ScheduledEvent::new(SimTime::new(t), s, s));
        }
        // force resizes to happen via inserts (growth threshold)
        let (_, width, _, _) = q.debug_shape();
        assert!(
            1.0e9 / width < 1.0e18,
            "width {width:e} leaves day numbers un-representable"
        );
        let mut n = 0;
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(ev) = q.pop_min() {
            assert!(ev.key() >= last || n == 0);
            last = ev.key();
            n += 1;
        }
        assert_eq!(n, 512);
    }
}
