//! `O(n)`-insert sorted-list event list.
//!
//! The structure early simulators actually shipped with: a linear list kept
//! sorted by due time. Pop is `O(1)` but insert degrades linearly, which is
//! exactly the scalability ceiling §5 complains about ("many of today's
//! simulators lack the capability to simulate large distributed systems
//! because their simulation engines are limited"). Kept as the baseline
//! that experiment E2 shows collapsing as the pending set grows.

use super::EventQueue;
use crate::event::ScheduledEvent;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Event list backed by a `VecDeque` kept sorted ascending by `(time, seq)`.
///
/// Insertion scans from the back (new events usually land near the end in
/// hold-model workloads), shifting later entries; pop takes from the front.
pub struct SortedListQueue<E> {
    items: VecDeque<ScheduledEvent<E>>,
}

impl<E> SortedListQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SortedListQueue {
            items: VecDeque::new(),
        }
    }
}

impl<E> Default for SortedListQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for SortedListQueue<E> {
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        let key = ev.key();
        // find first index from the back whose key is <= new key
        let mut idx = self.items.len();
        while idx > 0 && self.items[idx - 1].key() > key {
            idx -= 1;
        }
        self.items.insert(idx, ev);
    }

    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        self.items.pop_front()
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.items.front().map(|ev| ev.time)
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn pop_run(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        let base = out.len();
        let Some(first) = self.pop_next(out) else {
            return 0;
        };
        // `pop_next` appended the ties first; rotate the head in front.
        out.push(first);
        out[base..].rotate_right(1);
        out.len() - base
    }

    fn pop_next(&mut self, ties: &mut Vec<ScheduledEvent<E>>) -> Option<ScheduledEvent<E>> {
        // ties are contiguous at the front: drain without re-peeking
        let first = self.items.pop_front()?;
        let t = first.time;
        while self.items.front().is_some_and(|ev| ev.time.same_instant(t)) {
            let Some(ev) = self.items.pop_front() else {
                break;
            };
            ties.push(ev);
        }
        Some(first)
    }

    fn name(&self) -> &'static str {
        "sorted-list"
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn fifo_same_time() {
        conformance::fifo_within_same_time(SortedListQueue::new());
    }

    #[test]
    fn ordered() {
        conformance::ordered_output(SortedListQueue::new(), 3000, 11);
    }

    #[test]
    fn hold() {
        conformance::interleaved_hold_model(SortedListQueue::new(), 12);
    }

    #[test]
    fn peek() {
        conformance::peek_agrees_with_pop(SortedListQueue::new(), 13);
    }

    #[test]
    fn empty() {
        conformance::empty_behaviour(SortedListQueue::<u32>::new());
    }

    #[test]
    fn clustered() {
        conformance::clustered_times(SortedListQueue::new(), 14);
    }

    #[test]
    fn run_pop() {
        conformance::pop_run_matches_pop_min(SortedListQueue::new(), SortedListQueue::new(), 15);
    }

    #[test]
    fn stable_insert_position() {
        // equal-time events must keep seq order even when inserted out of
        // seq order relative to existing later-time entries
        let mut q = SortedListQueue::new();
        q.insert(ScheduledEvent::new(SimTime::new(2.0), 0, "late"));
        q.insert(ScheduledEvent::new(SimTime::new(1.0), 1, "a"));
        q.insert(ScheduledEvent::new(SimTime::new(1.0), 2, "b"));
        assert_eq!(q.pop_min().unwrap().event, "a");
        assert_eq!(q.pop_min().unwrap().event, "b");
        assert_eq!(q.pop_min().unwrap().event, "late");
    }
}
