//! Pending-event-set ("event list") structures.
//!
//! The paper singles the event list out as a first-order engine design
//! choice: "a system using an O(1) structure for the event list will behave
//! better than another one using an O(log n) queuing structure … Finding the
//! best suitable queuing structure to be used for the simulation of large
//! scale systems still represents a hot subject today. There is not a single
//! unanimity accepted queuing structure that performs best when modeling
//! distributed systems, they all tend to behave different depending on
//! various parameters." (§3)
//!
//! Four structures are provided behind one trait so any engine can swap
//! them (and experiment E2 races them against each other):
//!
//! | structure | insert | pop-min | notes |
//! |---|---|---|---|
//! | [`BinaryHeapQueue`] | O(log n) | O(log n) | the textbook default |
//! | [`SortedListQueue`] | O(n) | O(1) | fine for tiny models, collapses at scale |
//! | [`CalendarQueue`] | O(1) am. | O(1) am. | Brown 1988; self-resizing buckets |
//! | [`LadderQueue`] | O(1) am. | O(1) am. | Tang/Goh-style tiered buckets |
//!
//! All four deliver events in identical `(time, seq)` order, so swapping the
//! structure never changes simulation *results*, only simulator performance
//! — a property the integration tests assert.

mod binary_heap;
mod calendar;
mod ladder;
mod sorted_list;

pub use binary_heap::BinaryHeapQueue;
pub use calendar::CalendarQueue;
pub use ladder::LadderQueue;
pub use sorted_list::SortedListQueue;

use crate::event::ScheduledEvent;
use crate::time::SimTime;

/// A priority queue of [`ScheduledEvent`]s ordered by `(time, seq)`.
pub trait EventQueue<E> {
    /// Inserts an event.
    fn insert(&mut self, ev: ScheduledEvent<E>);
    /// Removes and returns the earliest event, if any.
    fn pop_min(&mut self) -> Option<ScheduledEvent<E>>;
    /// Due time of the earliest event, if any.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Removes the earliest *run* — every pending event sharing the
    /// minimal timestamp — appending the events to `out` in `(time, seq)`
    /// order and returning the run length (0 when empty). Engines use this
    /// to drain simultaneous events in one dispatch loop instead of
    /// re-touching the queue per event; structures whose ties sit
    /// contiguously (calendar day rings, the sorted list) override the
    /// default peek/pop loop with a contiguous drain.
    fn pop_run(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        let Some(first) = self.pop_min() else {
            return 0;
        };
        let t = first.time;
        out.push(first);
        let mut n = 1;
        while self.peek_time().is_some_and(|pt| pt.same_instant(t)) {
            let Some(ev) = self.pop_min() else {
                debug_assert!(false, "peeked event vanished");
                break;
            };
            out.push(ev);
            n += 1;
        }
        n
    }
    /// Removes and returns the earliest event, appending any *ties* —
    /// later-seq events sharing its timestamp — to `ties` in `(time, seq)`
    /// order. Equivalent to [`EventQueue::pop_run`] with the head returned
    /// directly instead of pushed, which lets engines deliver the common
    /// singleton run without a `Vec` round-trip; structures whose ties sit
    /// contiguously override the default peek/pop loop with a contiguous
    /// drain.
    fn pop_next(&mut self, ties: &mut Vec<ScheduledEvent<E>>) -> Option<ScheduledEvent<E>> {
        let first = self.pop_min()?;
        while self
            .peek_time()
            .is_some_and(|pt| pt.same_instant(first.time))
        {
            let Some(ev) = self.pop_min() else {
                debug_assert!(false, "peeked event vanished");
                break;
            };
            ties.push(ev);
        }
        Some(first)
    }
    /// Human-readable structure name (for experiment output).
    fn name(&self) -> &'static str;
    /// Storage occupancy `(live, high_water)` for structures that park
    /// payloads out-of-line (the pooled adaptor reports its slab's
    /// current and peak slot usage). `None` — the default — for plain
    /// structures whose only size measure is [`EventQueue::len`].
    fn occupancy(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Selector for the event-list structure, usable in experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// `O(log n)` binary heap.
    BinaryHeap,
    /// `O(n)`-insert sorted list.
    SortedList,
    /// Amortized `O(1)` calendar queue.
    Calendar,
    /// Amortized `O(1)` ladder queue.
    Ladder,
}

impl QueueKind {
    /// All selectable kinds, for parameter sweeps.
    pub const ALL: [QueueKind; 4] = [
        QueueKind::BinaryHeap,
        QueueKind::SortedList,
        QueueKind::Calendar,
        QueueKind::Ladder,
    ];

    /// Builds an empty queue of this kind.
    pub fn build<E: 'static>(self) -> Box<dyn EventQueue<E>> {
        match self {
            QueueKind::BinaryHeap => Box::new(BinaryHeapQueue::new()),
            QueueKind::SortedList => Box::new(SortedListQueue::new()),
            QueueKind::Calendar => Box::new(CalendarQueue::new()),
            QueueKind::Ladder => Box::new(LadderQueue::new()),
        }
    }

    /// Structure name.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::BinaryHeap => "binary-heap",
            QueueKind::SortedList => "sorted-list",
            QueueKind::Calendar => "calendar",
            QueueKind::Ladder => "ladder",
        }
    }
}

impl<E> EventQueue<E> for Box<dyn EventQueue<E>> {
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        (**self).insert(ev)
    }
    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        (**self).pop_min()
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        (**self).peek_time()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn pop_run(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        (**self).pop_run(out)
    }
    fn pop_next(&mut self, ties: &mut Vec<ScheduledEvent<E>>) -> Option<ScheduledEvent<E>> {
        (**self).pop_next(ties)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance suite run against every queue implementation.
    use super::*;
    use lsds_stats::SimRng;

    pub fn fifo_within_same_time<Q: EventQueue<u32>>(mut q: Q) {
        let t = SimTime::new(1.0);
        for i in 0..100u32 {
            q.insert(ScheduledEvent::new(t, i as u64, i));
        }
        for i in 0..100u32 {
            assert_eq!(q.pop_min().unwrap().event, i, "{}", q.name());
        }
    }

    pub fn ordered_output<Q: EventQueue<u64>>(mut q: Q, n: usize, seed: u64) {
        let mut rng = SimRng::new(seed);
        for s in 0..n as u64 {
            let t = rng.next_f64() * 1000.0;
            q.insert(ScheduledEvent::new(SimTime::new(t), s, s));
        }
        assert_eq!(q.len(), n);
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0;
        let mut first = true;
        while let Some(ev) = q.pop_min() {
            if !first {
                assert!(
                    ev.key() >= last,
                    "{}: out of order {:?} after {:?}",
                    q.name(),
                    ev.key(),
                    last
                );
            }
            first = false;
            last = ev.key();
            popped += 1;
        }
        assert_eq!(popped, n);
        assert!(q.is_empty());
    }

    pub fn interleaved_hold_model<Q: EventQueue<u64>>(mut q: Q, seed: u64) {
        // classic hold: pop one, insert one slightly in the future
        let mut rng = SimRng::new(seed);
        let mut seq = 0u64;
        for _ in 0..500 {
            q.insert(ScheduledEvent::new(
                SimTime::new(rng.next_f64() * 10.0),
                seq,
                seq,
            ));
            seq += 1;
        }
        let mut now = SimTime::ZERO;
        for _ in 0..20_000 {
            let ev = q.pop_min().expect("queue drained unexpectedly");
            assert!(ev.time >= now, "{}: clock went backwards", q.name());
            now = ev.time;
            q.insert(ScheduledEvent::new(
                now.after(rng.next_f64() * 5.0),
                seq,
                seq,
            ));
            seq += 1;
        }
        assert_eq!(q.len(), 500);
    }

    pub fn peek_agrees_with_pop<Q: EventQueue<u32>>(mut q: Q, seed: u64) {
        let mut rng = SimRng::new(seed);
        for s in 0..1000u64 {
            q.insert(ScheduledEvent::new(
                SimTime::new(rng.next_f64() * 50.0),
                s,
                s as u32,
            ));
        }
        while let Some(t) = q.peek_time() {
            let ev = q.pop_min().unwrap();
            assert_eq!(ev.time, t, "{}", q.name());
        }
    }

    pub fn empty_behaviour<Q: EventQueue<u32>>(mut q: Q) {
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.peek_time().is_none());
        assert!(q.pop_min().is_none());
        q.insert(ScheduledEvent::new(SimTime::new(3.0), 0, 7));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::new(3.0)));
        assert_eq!(q.pop_min().unwrap().event, 7);
        assert!(q.pop_min().is_none());
    }

    pub fn pop_run_matches_pop_min<Q: EventQueue<u64>>(mut a: Q, mut b: Q, seed: u64) {
        // heavy ties: many events land on the same quantized timestamp
        let mut rng = SimRng::new(seed);
        for s in 0..3000u64 {
            let t = (rng.next_f64() * 40.0).floor() * 0.5;
            a.insert(ScheduledEvent::new(SimTime::new(t), s, s));
            b.insert(ScheduledEvent::new(SimTime::new(t), s, s));
        }
        let mut runs = Vec::new();
        let mut total = 0;
        while !a.is_empty() {
            runs.clear();
            let n = a.pop_run(&mut runs);
            assert_eq!(n, runs.len(), "{}: bad run length", a.name());
            assert!(n > 0, "{}: empty run from non-empty queue", a.name());
            let t = runs[0].time;
            for ev in &runs {
                assert_eq!(ev.time, t, "{}: mixed-time run", a.name());
                let single = b.pop_min().expect("reference queue drained early");
                assert_eq!(
                    (ev.time, ev.seq, ev.event),
                    (single.time, single.seq, single.event),
                    "{}: run order diverged from pop_min order",
                    a.name()
                );
            }
            assert_ne!(
                a.peek_time(),
                Some(t),
                "{}: run left same-time events behind",
                a.name()
            );
            total += n;
        }
        assert_eq!(total, 3000);
        assert!(b.pop_min().is_none());
    }

    pub fn clustered_times<Q: EventQueue<u64>>(mut q: Q, seed: u64) {
        // bimodal: half the events in a tight cluster, half spread far out —
        // the adversarial profile for calendar-style bucket structures.
        let mut rng = SimRng::new(seed);
        let n = 4000u64;
        for s in 0..n {
            let t = if s % 2 == 0 {
                100.0 + rng.next_f64() * 0.001
            } else {
                rng.next_f64() * 1.0e6
            };
            q.insert(ScheduledEvent::new(SimTime::new(t), s, s));
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(ev) = q.pop_min() {
            assert!(ev.time >= last, "{}", q.name());
            last = ev.time;
            count += 1;
        }
        assert_eq!(count, n);
    }
}
