//! `O(log n)` binary-heap event list — the textbook default structure.

use super::EventQueue;
use crate::event::ScheduledEvent;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Entry wrapper ordering the heap by `(time, seq)` ascending.
struct Entry<E>(ScheduledEvent<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// Event list backed by `std::collections::BinaryHeap`.
///
/// Insert and pop are `O(log n)`; this is the baseline the amortized-`O(1)`
/// structures are compared against in experiment E2.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Creates an empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        self.heap.push(Reverse(Entry(ev)));
    }

    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|Reverse(Entry(ev))| ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(Entry(ev))| ev.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn name(&self) -> &'static str {
        "binary-heap"
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn fifo_same_time() {
        conformance::fifo_within_same_time(BinaryHeapQueue::new());
    }

    #[test]
    fn ordered() {
        conformance::ordered_output(BinaryHeapQueue::new(), 5000, 1);
    }

    #[test]
    fn hold() {
        conformance::interleaved_hold_model(BinaryHeapQueue::new(), 2);
    }

    #[test]
    fn peek() {
        conformance::peek_agrees_with_pop(BinaryHeapQueue::new(), 3);
    }

    #[test]
    fn empty() {
        conformance::empty_behaviour(BinaryHeapQueue::<u32>::new());
    }

    #[test]
    fn clustered() {
        conformance::clustered_times(BinaryHeapQueue::new(), 4);
    }
}
