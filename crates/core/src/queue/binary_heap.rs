//! `O(log n)` binary-heap event list — the textbook default structure.

use super::EventQueue;
use crate::arena::Slab;
use crate::event::ScheduledEvent;
use crate::time::SimTime;

/// Packs a `(time, seq)` priority into one integer so heap compares are a
/// single `u128` comparison instead of a float compare plus a tie-break
/// branch. The high half is the time's bit pattern passed through the
/// standard total-order involution (sign bit flipped for non-negatives,
/// all bits flipped for negatives), which sorts exactly like the `f64`
/// values themselves; the low half is the sequence number.
#[inline]
fn okey(time: SimTime, seq: u64) -> u128 {
    // `+ 0.0` collapses -0.0 onto +0.0 so the two (equal as times) also
    // map to equal keys and the tie falls through to `seq`
    let b = (time.seconds() + 0.0).to_bits();
    let mask = (((b as i64) >> 63) as u64) | (1u64 << 63);
    (((b ^ mask) as u128) << 64) | seq as u128
}

/// Heap branching factor. A 4-ary layout halves the tree depth — and so
/// the node copies per sift — at the price of up to three extra key
/// compares per level; with 32-byte `Copy` nodes the compares are nearly
/// free and the shallower tree wins.
const ARITY: usize = 4;

/// One heap node: the packed priority plus the slab slot of its payload.
/// `Copy`, so the sift loops can hold the moving node in a register and
/// shift ancestors/children into the hole instead of swapping.
#[derive(Clone, Copy)]
struct Node {
    key: u128,
    slot: u32,
}

/// Event list backed by an array-embedded binary min-heap.
///
/// Insert and pop are `O(log n)`; this is the baseline the amortized-`O(1)`
/// structures are compared against in experiment E2. The heap array holds
/// only `(packed key, payload slot)` nodes — 32 bytes, `Copy` — while the
/// [`ScheduledEvent`] records sit still in a free-list [`Slab`] until
/// delivery, so sifting never moves payload bytes and never compares
/// floats.
pub struct BinaryHeapQueue<E> {
    nodes: Vec<Node>,
    events: Slab<ScheduledEvent<E>>,
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            nodes: Vec::new(),
            events: Slab::new(),
        }
    }

    /// Creates an empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            nodes: Vec::with_capacity(cap),
            events: Slab::with_capacity(cap),
        }
    }

    /// Moves `node` up from position `i` (a freshly appended leaf) to its
    /// heap position, shifting smaller-priority ancestors down.
    #[inline]
    fn sift_up(&mut self, mut i: usize, node: Node) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            let pn = self.nodes[parent];
            if pn.key <= node.key {
                break;
            }
            self.nodes[i] = pn;
            i = parent;
        }
        self.nodes[i] = node;
    }

    /// Places `node` into the root hole, shifting the smallest child up at
    /// each level until the heap property holds.
    #[inline]
    fn sift_down(&mut self, node: Node) {
        let n = self.nodes.len();
        let mut i = 0;
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let last = (first + ARITY).min(n);
            let mut child = first;
            let mut ck = self.nodes[first].key;
            for c in first + 1..last {
                let k = self.nodes[c].key;
                if k < ck {
                    ck = k;
                    child = c;
                }
            }
            if node.key <= ck {
                break;
            }
            self.nodes[i] = self.nodes[child];
            i = child;
        }
        self.nodes[i] = node;
    }
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        let key = okey(ev.time, ev.seq);
        let slot = self.events.insert(ev);
        let i = self.nodes.len();
        self.nodes.push(Node { key, slot });
        self.sift_up(i, Node { key, slot });
    }

    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        let first = *self.nodes.first()?;
        let Some(last) = self.nodes.pop() else {
            debug_assert!(false, "non-empty heap has a last node");
            return None;
        };
        if !self.nodes.is_empty() {
            self.sift_down(last);
        }
        let ev = self.events.remove(first.slot);
        debug_assert!(ev.is_some(), "heap node without payload");
        ev
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        let slot = self.nodes.first()?.slot;
        self.events.get(slot).map(|ev| ev.time)
    }

    fn pop_run(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        let base = out.len();
        let Some(first) = self.pop_next(out) else {
            return 0;
        };
        // `pop_next` appended the ties first; rotate the head in front.
        out.push(first);
        out[base..].rotate_right(1);
        out.len() - base
    }

    fn pop_next(&mut self, ties: &mut Vec<ScheduledEvent<E>>) -> Option<ScheduledEvent<E>> {
        let first = self.pop_min()?;
        // Ties share the key's high (time) half, so the run boundary check
        // is a shift-compare on the root node — no payload access.
        let tbits = okey(first.time, 0) >> 64;
        while self.nodes.first().is_some_and(|nd| nd.key >> 64 == tbits) {
            let Some(ev) = self.pop_min() else {
                debug_assert!(false, "non-empty heap refused to pop");
                break;
            };
            ties.push(ev);
        }
        Some(first)
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn name(&self) -> &'static str {
        "binary-heap"
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn fifo_same_time() {
        conformance::fifo_within_same_time(BinaryHeapQueue::new());
    }

    #[test]
    fn ordered() {
        conformance::ordered_output(BinaryHeapQueue::new(), 5000, 1);
    }

    #[test]
    fn hold() {
        conformance::interleaved_hold_model(BinaryHeapQueue::new(), 2);
    }

    #[test]
    fn peek() {
        conformance::peek_agrees_with_pop(BinaryHeapQueue::new(), 3);
    }

    #[test]
    fn empty() {
        conformance::empty_behaviour(BinaryHeapQueue::<u32>::new());
    }

    #[test]
    fn clustered() {
        conformance::clustered_times(BinaryHeapQueue::new(), 4);
    }

    #[test]
    fn run_pop() {
        conformance::pop_run_matches_pop_min(BinaryHeapQueue::new(), BinaryHeapQueue::new(), 5);
    }

    #[test]
    fn okey_orders_like_time_then_seq() {
        let times = [-2.5, -1.0e-300, 0.0, 1.0e-300, 0.5, 1.0, 1.0e300];
        let seqs = [0u64, 1, u64::MAX];
        for &ta in &times {
            for &tb in &times {
                for &sa in &seqs {
                    for &sb in &seqs {
                        let expect = (SimTime::new(ta), sa).cmp(&(SimTime::new(tb), sb));
                        let got = okey(SimTime::new(ta), sa).cmp(&okey(SimTime::new(tb), sb));
                        assert_eq!(expect, got, "({ta}, {sa}) vs ({tb}, {sb})");
                    }
                }
            }
        }
    }

    #[test]
    fn okey_treats_negative_zero_as_zero() {
        assert_eq!(okey(SimTime::new(-0.0), 3), okey(SimTime::new(0.0), 3));
        assert!(okey(SimTime::new(-0.0), 3) > okey(SimTime::new(0.0), 2));
    }
}
