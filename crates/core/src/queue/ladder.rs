//! Ladder queue (after Tang & Goh, 2005) — amortized `O(1)` event list.
//!
//! Three tiers: an unsorted far-future *top*, a ladder of *rungs* whose
//! buckets progressively refine the near future, and a small sorted
//! *bottom* that events are actually popped from. Buckets are only sorted
//! when they become imminent, and oversized buckets are split into a finer
//! rung instead of being sorted, which keeps per-event work constant
//! without the calendar queue's sensitivity to a single global bucket
//! width. This is the second `O(1)` structure raced in experiment E2.

use super::EventQueue;
use crate::event::ScheduledEvent;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Maximum events sorted directly into the bottom from one bucket.
const THRES: usize = 48;
/// Maximum ladder depth; deeper overflow buckets are sorted regardless.
const MAX_RUNGS: usize = 8;

struct Rung<E> {
    /// Start time of the rung's coverage.
    start: f64,
    /// Width of each bucket.
    width: f64,
    /// Buckets; unsorted until transferred.
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    /// Index of the next bucket to consume.
    cur: usize,
    /// Events remaining in this rung.
    count: usize,
}

impl<E> Rung<E> {
    /// Builds a rung covering the half-open span `[start, end)`, with one
    /// bucket per event (+1 so an event sitting exactly at `end` still
    /// lands inside the last bucket). The span must be the full range the
    /// rung is responsible for — not merely the range of `events` — so
    /// that later inserts anywhere in the span are accepted by this rung
    /// rather than leaking past the ladder.
    fn spanning(events: Vec<ScheduledEvent<E>>, start: f64, end: f64) -> Self {
        debug_assert!(!events.is_empty());
        let n = events.len();
        let width = if end > start {
            (end - start) / (n + 1) as f64
        } else {
            1.0
        };
        let mut rung = Rung {
            start,
            width,
            buckets: (0..n + 1).map(|_| Vec::new()).collect(),
            cur: 0,
            count: 0,
        };
        for ev in events {
            rung.push(ev);
        }
        rung
    }

    /// Time at which the not-yet-consumed region begins.
    #[inline]
    fn cur_start(&self) -> f64 {
        self.start + self.cur as f64 * self.width
    }

    /// End of the rung's coverage.
    #[inline]
    fn end(&self) -> f64 {
        self.start + self.buckets.len() as f64 * self.width
    }

    #[inline]
    fn accepts(&self, t: f64) -> bool {
        t >= self.cur_start() && t < self.end()
    }

    fn push(&mut self, ev: ScheduledEvent<E>) {
        let t = ev.time.seconds();
        // Clamp into the unconsumed range: `accepts` guarantees
        // t >= cur_start up to floating-point rounding at the boundary.
        let i = (((t - self.start) / self.width) as usize).clamp(self.cur, self.buckets.len() - 1);
        self.buckets[i].push(ev);
        self.count += 1;
    }

    /// Takes the next non-empty bucket, advancing the cursor past it.
    fn take_next_bucket(&mut self) -> Option<Vec<ScheduledEvent<E>>> {
        while self.cur < self.buckets.len() {
            let i = self.cur;
            self.cur += 1;
            if !self.buckets[i].is_empty() {
                let b = std::mem::take(&mut self.buckets[i]);
                self.count -= b.len();
                return Some(b);
            }
        }
        None
    }
}

/// Tiered event list: unsorted top, refining rungs, sorted bottom.
pub struct LadderQueue<E> {
    top: Vec<ScheduledEvent<E>>,
    top_start: f64,
    top_max: f64,
    rungs: Vec<Rung<E>>,
    bottom: VecDeque<ScheduledEvent<E>>,
    size: usize,
}

impl<E> LadderQueue<E> {
    /// Creates an empty ladder queue.
    pub fn new() -> Self {
        LadderQueue {
            top: Vec::new(),
            top_start: 0.0,
            top_max: 0.0,
            rungs: Vec::new(),
            bottom: VecDeque::new(),
            size: 0,
        }
    }

    fn insert_bottom(&mut self, ev: ScheduledEvent<E>) {
        let key = ev.key();
        let mut idx = self.bottom.len();
        while idx > 0 && self.bottom[idx - 1].key() > key {
            idx -= 1;
        }
        self.bottom.insert(idx, ev);
    }

    /// Moves one bucket's worth of events into the bottom, spawning finer
    /// rungs for oversized buckets. Returns false when truly empty.
    fn refill_bottom(&mut self) -> bool {
        loop {
            if let Some(rung) = self.rungs.last_mut() {
                match rung.take_next_bucket() {
                    Some(bucket) => {
                        // Span of the bucket just consumed, from the
                        // parent's geometry. A child rung built from this
                        // bucket must cover the whole span — not just its
                        // current events' [min, max] — or a later insert
                        // into the uncovered gap falls through the rung
                        // walk into the sorted bottom behind events that
                        // are still sitting in the child rung.
                        let bs = rung.start + (rung.cur - 1) as f64 * rung.width;
                        let bw = rung.width;
                        if bucket.len() > THRES && self.rungs.len() < MAX_RUNGS {
                            self.rungs.push(Rung::spanning(bucket, bs, bs + bw));
                            continue;
                        }
                        let mut bucket = bucket;
                        bucket.sort_by_key(|a| a.key());
                        debug_assert!(self.bottom.is_empty());
                        self.bottom = bucket.into();
                        return true;
                    }
                    None => {
                        self.rungs.pop();
                        continue;
                    }
                }
            } else if !self.top.is_empty() {
                let events = std::mem::take(&mut self.top);
                self.top_start = self.top_max;
                // The new first rung owns everything below the raised
                // top boundary; inserts at or past `top_start` go to top.
                let lo = events
                    .iter()
                    .map(|ev| ev.time.seconds())
                    .fold(f64::INFINITY, f64::min);
                self.rungs.push(Rung::spanning(events, lo, self.top_start));
                continue;
            } else {
                return false;
            }
        }
    }
}

impl<E> Default for LadderQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for LadderQueue<E> {
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        self.size += 1;
        let t = ev.time.seconds();
        if self.rungs.is_empty() && self.bottom.is_empty() {
            // nothing structured yet: everything goes to top
            self.top_max = self.top_max.max(t);
            self.top.push(ev);
            return;
        }
        if t >= self.top_start {
            self.top_max = self.top_max.max(t);
            self.top.push(ev);
            return;
        }
        // deepest (finest, earliest-range) rung that can take it
        for rung in self.rungs.iter_mut().rev() {
            if rung.accepts(t) {
                rung.push(ev);
                return;
            }
        }
        self.insert_bottom(ev);
    }

    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        if self.bottom.is_empty() && !self.refill_bottom() {
            return None;
        }
        self.size -= 1;
        self.bottom.pop_front()
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.bottom.is_empty() && !self.refill_bottom() {
            return None;
        }
        self.bottom.front().map(|ev| ev.time)
    }

    fn len(&self) -> usize {
        self.size
    }

    fn name(&self) -> &'static str {
        "ladder"
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;
    use lsds_stats::SimRng;

    #[test]
    fn fifo_same_time() {
        conformance::fifo_within_same_time(LadderQueue::new());
    }

    #[test]
    fn ordered() {
        conformance::ordered_output(LadderQueue::new(), 5000, 31);
    }

    #[test]
    fn hold() {
        conformance::interleaved_hold_model(LadderQueue::new(), 32);
    }

    #[test]
    fn peek() {
        conformance::peek_agrees_with_pop(LadderQueue::new(), 33);
    }

    #[test]
    fn empty() {
        conformance::empty_behaviour(LadderQueue::<u32>::new());
    }

    #[test]
    fn clustered() {
        conformance::clustered_times(LadderQueue::new(), 34);
    }

    #[test]
    fn run_pop() {
        conformance::pop_run_matches_pop_min(LadderQueue::new(), LadderQueue::new(), 35);
    }

    #[test]
    fn all_same_time_bucket() {
        // degenerate single-time bucket must not split forever
        let mut q = LadderQueue::new();
        for s in 0..500u64 {
            q.insert(ScheduledEvent::new(SimTime::new(42.0), s, s));
        }
        for s in 0..500u64 {
            assert_eq!(q.pop_min().unwrap().event, s);
        }
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn insert_into_split_gap_stays_ordered() {
        // A dense cluster splits into a child rung whose events span only
        // [5.0, 5.099]; the parent bucket it came from spans ~[5, 15). An
        // insert at 10.0 must refine into the child rung, not fall through
        // to the bottom where it would be delivered out of order.
        let mut q = LadderQueue::new();
        let mut seq = 0u64;
        for i in 0..100 {
            q.insert(ScheduledEvent::new(
                SimTime::new(5.0 + i as f64 * 0.001),
                seq,
                seq,
            ));
            seq += 1;
        }
        q.insert(ScheduledEvent::new(SimTime::new(1000.0), seq, seq));
        seq += 1;
        let first = q.pop_min().unwrap();
        assert_eq!(first.time, SimTime::new(5.0));
        q.insert(ScheduledEvent::new(SimTime::new(10.0), seq, seq));
        let mut last = first.time;
        while let Some(ev) = q.pop_min() {
            assert!(ev.time >= last, "out of order: {} after {}", ev.time, last);
            last = ev.time;
        }
    }

    /// Runs the same insert/pop script against the ladder and the sorted
    /// list (the trivially-correct reference), asserting both produce the
    /// identical `(time-bits, seq, event)` stream — order *and* content.
    fn assert_matches_sorted_list(script: impl Fn(&mut dyn FnMut(Op))) {
        use super::super::sorted_list::SortedListQueue;
        enum Run<E> {
            Ladder(LadderQueue<E>),
            List(SortedListQueue<E>),
        }
        let mut outs: Vec<Vec<(u64, u64, u64)>> = Vec::new();
        for mut q in [
            Run::Ladder(LadderQueue::new()),
            Run::List(SortedListQueue::new()),
        ] {
            let mut out = Vec::new();
            script(&mut |op| match op {
                Op::Insert(t, s) => match &mut q {
                    Run::Ladder(q) => q.insert(ScheduledEvent::new(SimTime::new(t), s, s)),
                    Run::List(q) => q.insert(ScheduledEvent::new(SimTime::new(t), s, s)),
                },
                Op::Pop => {
                    let ev = match &mut q {
                        Run::Ladder(q) => q.pop_min(),
                        Run::List(q) => q.pop_min(),
                    };
                    if let Some(ev) = ev {
                        out.push((ev.time.seconds().to_bits(), ev.seq, ev.event));
                    }
                }
            });
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1], "ladder diverged from sorted list");
    }

    enum Op {
        Insert(f64, u64),
        Pop,
    }

    #[test]
    fn matches_sorted_list_on_all_equal_times() {
        // adversarial: every event at the same timestamp, pops interleaved
        // with inserts so the degenerate zero-width bucket keeps splitting
        assert_matches_sorted_list(|do_op| {
            let mut seq = 0u64;
            for round in 0..6 {
                for _ in 0..120 {
                    do_op(Op::Insert(7.5, seq));
                    seq += 1;
                }
                for _ in 0..(40 + round * 10) {
                    do_op(Op::Pop);
                }
            }
            for _ in 0..2000 {
                do_op(Op::Pop);
            }
        });
    }

    #[test]
    fn matches_sorted_list_on_monotone_decreasing_inserts() {
        // adversarial: after a partial drain, each insert lands *earlier*
        // than the one before (but still >= the last pop), repeatedly
        // probing the gap between consumed buckets and live rung spans
        assert_matches_sorted_list(|do_op| {
            let mut seq = 0u64;
            for i in 0..300 {
                do_op(Op::Insert(i as f64 * 0.01, seq));
                seq += 1;
            }
            for _ in 0..50 {
                do_op(Op::Pop);
            }
            // last pop was at ~0.49; walk inserts downward toward it
            for i in 0..200 {
                do_op(Op::Insert(2.9 - i as f64 * 0.012, seq));
                seq += 1;
                if i % 3 == 0 {
                    do_op(Op::Pop);
                }
            }
            for _ in 0..1000 {
                do_op(Op::Pop);
            }
        });
    }

    #[test]
    fn interleaved_inserts_respect_order() {
        let mut q = LadderQueue::new();
        let mut rng = SimRng::new(35);
        let mut seq = 0u64;
        for _ in 0..2000 {
            q.insert(ScheduledEvent::new(
                SimTime::new(rng.next_f64() * 100.0),
                seq,
                seq,
            ));
            seq += 1;
        }
        // drain half, interleaving new inserts at or after "now"
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let ev = q.pop_min().unwrap();
            assert!(ev.time >= now);
            now = ev.time;
            q.insert(ScheduledEvent::new(
                now.after(rng.next_f64() * 50.0),
                seq,
                seq,
            ));
            seq += 1;
        }
        // drain rest, still ordered
        let mut last = now;
        while let Some(ev) = q.pop_min() {
            assert!(ev.time >= last);
            last = ev.time;
        }
    }
}
