//! Arena storage with `u32` index handles.
//!
//! The paper's §5 scale prescription — "optimizing the way in which
//! simulated entities are being scheduled" — starts with how entities are
//! *stored*: per-entity heap boxes and string/hash keyed maps cost an
//! allocation and a hashing pass on every event. The structures here give
//! the hot paths of `lsds-net` and `lsds-grid` contiguous, index-addressed
//! storage instead:
//!
//! * [`Slab`] — a free-list arena. `insert` returns a dense `u32` handle,
//!   `remove` recycles it. Lookups are a bounds-checked array index, no
//!   hashing. Iteration order is *slot* order, which is **not** insertion
//!   order once slots recycle — callers that need deterministic order must
//!   sort by a monotone key they store themselves (see `lsds-net`'s flow
//!   uids).
//! * [`IdMap`] — a direct-indexed map from a dense monotone `u64` id space
//!   (job ids, flow ids) to `u32` slot handles. Lookup is one array index;
//!   the backing `Vec` grows with the id space, 4 bytes per id ever issued.
//!
//! Both are deliberately dependency-free and `unsafe`-free; `Slab` keeps
//! vacant slots as `None`, trading a word of padding for safety.

/// A free-list arena: `O(1)` insert/remove/lookup by `u32` handle.
///
/// ```
/// use lsds_core::arena::Slab;
/// let mut s = Slab::new();
/// let a = s.insert("alpha");
/// let b = s.insert("beta");
/// assert_eq!(s[a], "alpha");
/// s.remove(a);
/// let c = s.insert("gamma"); // recycles slot `a`
/// assert_eq!(c, a);
/// assert_eq!(s.len(), 2);
/// let _ = b;
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    /// Values handed back by [`Slab::retire`], kept so [`Slab::insert_with`]
    /// can scavenge their heap allocations. Bounded by the free-list depth.
    spare: Vec<T>,
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` values.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated (the exclusive upper bound of valid handles).
    #[inline]
    pub fn slot_bound(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Stores a value, recycling a vacant slot when one exists.
    #[inline]
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            debug_assert!(self.slots[slot as usize].is_none(), "free slot occupied");
            self.slots[slot as usize] = Some(value);
            slot
        } else {
            assert!(self.slots.len() < u32::MAX as usize, "slab handle overflow");
            self.slots.push(Some(value));
            (self.slots.len() - 1) as u32
        }
    }

    /// Stores a value produced by `make`, handing the closure a previously
    /// [retired](Slab::retire) value (if any) so it can scavenge its heap
    /// allocations (e.g. reuse a `Vec`'s capacity) instead of allocating.
    #[inline]
    pub fn insert_with(&mut self, make: impl FnOnce(Option<T>) -> T) -> u32 {
        let prev = self.spare.pop();
        self.insert(make(prev))
    }

    /// Removes and returns the value in `slot`, recycling the handle.
    /// Returns `None` when the slot is vacant.
    #[inline]
    pub fn remove(&mut self, slot: u32) -> Option<T> {
        let v = self.slots.get_mut(slot as usize)?.take()?;
        self.len -= 1;
        self.free.push(slot);
        Some(v)
    }

    /// Like [`Slab::remove`] but parks the vacated value in a spare pool
    /// for [`Slab::insert_with`] to scavenge, so its heap allocations
    /// survive the recycle. The slot reads as vacant afterwards.
    #[inline]
    pub fn retire(&mut self, slot: u32) -> bool {
        match self.slots.get_mut(slot as usize).and_then(Option::take) {
            Some(v) => {
                self.len -= 1;
                self.free.push(slot);
                self.spare.push(v);
                true
            }
            None => false,
        }
    }

    /// Shared access; `None` for vacant or out-of-range slots.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&T> {
        self.slots.get(slot as usize)?.as_ref()
    }

    /// Mutable access; `None` for vacant or out-of-range slots.
    #[inline]
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots.get_mut(slot as usize)?.as_mut()
    }

    /// Visits every live `(slot, value)` in slot order. Slot order is not
    /// insertion order after recycling — order-sensitive callers must sort
    /// on a key of their own.
    pub fn for_each(&self, mut f: impl FnMut(u32, &T)) {
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(v) = s {
                f(i as u32, v);
            }
        }
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::ops::Index<u32> for Slab<T> {
    type Output = T;
    #[inline]
    fn index(&self, slot: u32) -> &T {
        match self.slots[slot as usize].as_ref() {
            Some(v) => v,
            // lsds-lint: allow(hot-path-panic) reason="indexing a vacant slot is a caller bug; Index has no fallible signature — fallible callers use get()"
            None => panic!("vacant slab slot {slot}"),
        }
    }
}

impl<T> std::ops::IndexMut<u32> for Slab<T> {
    #[inline]
    fn index_mut(&mut self, slot: u32) -> &mut T {
        match self.slots[slot as usize].as_mut() {
            Some(v) => v,
            // lsds-lint: allow(hot-path-panic) reason="indexing a vacant slot is a caller bug; IndexMut has no fallible signature — fallible callers use get_mut()"
            None => panic!("vacant slab slot {slot}"),
        }
    }
}

/// Direct-indexed map from a dense monotone `u64` id space to `u32` slot
/// handles: one array index per lookup, no hashing. Ids must be issued
/// densely from 0 (job counters, flow counters); the map spends 4 bytes
/// per id ever seen.
#[derive(Debug, Clone, Default)]
pub struct IdMap {
    slots: Vec<u32>,
}

/// Vacant marker inside [`IdMap`] (`u32::MAX` is never a valid handle —
/// [`Slab::insert`] refuses to allocate it).
const VACANT: u32 = u32::MAX;

impl IdMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        IdMap::default()
    }

    /// Binds `id` to `slot`, growing the index as the id space grows.
    #[inline]
    pub fn bind(&mut self, id: u64, slot: u32) {
        debug_assert!(slot != VACANT, "u32::MAX is the vacant marker");
        let i = id as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, VACANT);
        }
        self.slots[i] = slot;
    }

    /// The slot bound to `id`, if any.
    #[inline]
    pub fn get(&self, id: u64) -> Option<u32> {
        match self.slots.get(id as usize) {
            Some(&s) if s != VACANT => Some(s),
            _ => None,
        }
    }

    /// Unbinds `id`, returning the slot it was bound to.
    #[inline]
    pub fn unbind(&mut self, id: u64) -> Option<u32> {
        match self.slots.get_mut(id as usize) {
            Some(s) if *s != VACANT => {
                let out = *s;
                *s = VACANT;
                Some(out)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_remove_recycles_lifo() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        let c = s.insert(3);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(s.remove(b), Some(2));
        assert_eq!(s.remove(a), Some(1));
        assert_eq!(s.len(), 1);
        // LIFO recycle: most recently freed slot first
        assert_eq!(s.insert(4), a);
        assert_eq!(s.insert(5), b);
        assert_eq!(s.insert(6), 3);
        assert_eq!(s[c], 3);
        assert_eq!(s.remove(99), None);
        assert_eq!(s.remove(c), Some(3));
        assert_eq!(s.remove(c), None, "double remove is None");
    }

    #[test]
    fn slab_insert_with_scavenges_capacity() {
        let mut s: Slab<Vec<u64>> = Slab::new();
        let a = s.insert(Vec::with_capacity(64));
        assert!(s.retire(a));
        assert!(s.get(a).is_none(), "retired slot reads vacant");
        let b = s.insert_with(|prev| {
            let mut v = prev.expect("retired value available for reuse");
            v.clear();
            v.push(9);
            v
        });
        assert_eq!(b, a);
        assert!(s[b].capacity() >= 64, "allocation survived the recycle");
        assert_eq!(s[b], vec![9]);
    }

    #[test]
    fn slab_for_each_visits_live_only() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        s.remove(a);
        let mut seen = Vec::new();
        s.for_each(|slot, v| seen.push((slot, *v)));
        assert_eq!(seen, vec![(1, 20)]);
    }

    #[test]
    fn idmap_bind_get_unbind() {
        let mut m = IdMap::new();
        assert_eq!(m.get(0), None);
        m.bind(0, 7);
        m.bind(5, 9);
        assert_eq!(m.get(0), Some(7));
        assert_eq!(m.get(5), Some(9));
        assert_eq!(m.get(3), None);
        assert_eq!(m.unbind(5), Some(9));
        assert_eq!(m.get(5), None);
        assert_eq!(m.unbind(5), None);
    }
}
