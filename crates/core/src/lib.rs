//! `lsds-core` — the discrete-event simulation engine.
//!
//! This crate implements the *simulation engine* axes of the paper's
//! taxonomy (§3, "implementation"):
//!
//! * **Mechanics** — state changes can advance as pure discrete events
//!   ([`engine::EventDriven`]), by fixed time increments
//!   ([`engine::TimeDriven`]), from an externally collected event trace
//!   ([`engine::TraceDriven`]), or as a hybrid of continuous integration and
//!   discrete events ([`engine::Hybrid`]). The paper: "an event-driven DES
//!   is more efficient than a time-driven DES since it does not step through
//!   regular time intervals when no event occurs" — measured in experiment E3.
//! * **Event-list structures** — the pending-event set sits behind the
//!   [`queue::EventQueue`] trait with four interchangeable implementations:
//!   an `O(log n)` binary heap, an `O(n)` sorted list, and two amortized
//!   `O(1)` structures (calendar queue, ladder queue). The paper: "a system
//!   using an O(1) structure for the event list will behave better than
//!   another one using an O(log n) queuing structure … they all tend to
//!   behave different depending on various parameters" — experiment E2.
//! * **Entity scheduling / job→context mapping** — the process-oriented
//!   layer ([`process`]) models MONARC 2-style "active objects" and lets the
//!   simulation of many jobs share execution contexts under several mapping
//!   schemes ("reusing threads, using advanced mapping schemes in which
//!   multiple jobs can be simulated running in the same thread context …
//!   yield higher simulation performances") — experiment E12.
//!
//! Determinism: every engine processes events in strict `(time, sequence)`
//! order, so a model with no stochastic components is deterministic in the
//! taxonomy's sense, and a stochastic model re-run with the same seed
//! reproduces its results exactly (experiment E14).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod engine;
pub mod event;
pub mod pool;
pub mod process;
pub mod queue;
pub mod time;

pub use arena::{IdMap, Slab};
pub use engine::{
    Ctx, EventDriven, Hybrid, MappedCtx, Model, RunStats, Schedule, TimeDriven, TraceDriven,
    TraceSource,
};
pub use event::{EventSeq, ScheduledEvent, NO_PARENT};
pub use pool::{EventPool, PooledQueue};
pub use queue::{
    BinaryHeapQueue, CalendarQueue, EventQueue, LadderQueue, QueueKind, SortedListQueue,
};
pub use time::SimTime;
