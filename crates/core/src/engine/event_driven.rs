//! Event-driven executor: the clock jumps to the next pending event.

use super::{Ctx, Model, QueueSink, RunStats};
use crate::event::{EventSeq, ScheduledEvent};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::SimTime;
use lsds_obs::{
    NoopRecorder, NoopTelemetry, NoopTracer, QueueOp, Recorder, SpanKind, Telemetry, Tracer,
};

/// The canonical discrete-event executor.
///
/// Generic over the event-list structure `Q` so the queue experiments (E2)
/// can swap implementations without touching models, and over the
/// observability recorder `R` (default [`NoopRecorder`], whose empty inline
/// hooks compile away — an unmonitored engine is bit-for-bit the seed
/// engine):
///
/// ```
/// use lsds_core::{EventDriven, Model, Ctx, SimTime, CalendarQueue};
///
/// struct Counter(u64);
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, _ev: (), ctx: &mut Ctx<'_, ()>) {
///         self.0 += 1;
///         if self.0 < 10 {
///             ctx.schedule_in(1.0, ());
///         }
///     }
/// }
///
/// let mut sim = EventDriven::with_queue(Counter(0), CalendarQueue::new());
/// sim.schedule(SimTime::ZERO, ());
/// let stats = sim.run();
/// assert_eq!(stats.events, 10);
/// assert_eq!(sim.model().0, 10);
/// ```
pub struct EventDriven<
    M: Model,
    Q: EventQueue<M::Event> = BinaryHeapQueue<<M as Model>::Event>,
    R: Recorder = NoopRecorder,
    T: Tracer = NoopTracer,
    Y: Telemetry = NoopTelemetry,
> {
    model: M,
    queue: Q,
    recorder: R,
    tracer: T,
    tel: Y,
    clock: SimTime,
    seq: EventSeq,
    staged: Vec<ScheduledEvent<M::Event>>,
    /// Same-timestamp run drained from the queue in one `pop_run` call,
    /// held in *reverse* `(time, seq)` order so each `step` takes the next
    /// event by value with an `O(1)` `pop`. Logically these events are
    /// still pending: `pending()` and every recorded queue length count
    /// them, so a batched run is observationally identical to per-event
    /// popping. Events a handler stages at the batch's own timestamp go to
    /// the queue and are picked up by the *next* `pop_run` — their seqs
    /// exceed every seq in the current batch, so `(time, seq)` order holds.
    batch: Vec<ScheduledEvent<M::Event>>,
    stopped: bool,
    processed: u64,
}

impl<M: Model> EventDriven<M, BinaryHeapQueue<M::Event>, NoopRecorder, NoopTracer, NoopTelemetry> {
    /// Creates an engine with the default binary-heap event list.
    pub fn new(model: M) -> Self {
        Self::with_queue(model, BinaryHeapQueue::new())
    }
}

impl<M: Model, Q: EventQueue<M::Event>> EventDriven<M, Q, NoopRecorder, NoopTracer, NoopTelemetry> {
    /// Creates an engine over a specific event-list structure.
    pub fn with_queue(model: M, queue: Q) -> Self {
        Self::with_parts(model, queue, NoopRecorder)
    }
}

impl<M: Model, R: Recorder>
    EventDriven<M, BinaryHeapQueue<M::Event>, R, NoopTracer, NoopTelemetry>
{
    /// Creates a monitored engine with the default binary-heap event list.
    pub fn with_recorder(model: M, recorder: R) -> Self {
        Self::with_parts(model, BinaryHeapQueue::new(), recorder)
    }
}

impl<M: Model, Q: EventQueue<M::Event>, R: Recorder>
    EventDriven<M, Q, R, NoopTracer, NoopTelemetry>
{
    /// Creates an engine from an explicit queue and recorder.
    pub fn with_parts(model: M, queue: Q, recorder: R) -> Self {
        EventDriven {
            model,
            queue,
            recorder,
            tracer: NoopTracer,
            tel: NoopTelemetry,
            clock: SimTime::ZERO,
            seq: 0,
            staged: Vec::new(),
            batch: Vec::new(),
            stopped: false,
            processed: 0,
        }
    }
}

impl<M: Model, Q: EventQueue<M::Event>, R: Recorder, T: Tracer, Y: Telemetry>
    EventDriven<M, Q, R, T, Y>
{
    /// Swaps the tracer, preserving all engine state (clock, event list,
    /// sequence counter, model). Because a tracer only observes, a run
    /// continued after this conversion is bit-identical to one that never
    /// converted — enabling tracing mid-setup costs nothing in fidelity.
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> EventDriven<M, Q, R, T2, Y> {
        EventDriven {
            model: self.model,
            queue: self.queue,
            recorder: self.recorder,
            tracer,
            tel: self.tel,
            clock: self.clock,
            seq: self.seq,
            staged: self.staged,
            batch: self.batch,
            stopped: self.stopped,
            processed: self.processed,
        }
    }

    /// Swaps the telemetry sink, preserving all engine state — the same
    /// state-preserving conversion as [`EventDriven::with_tracer`].
    /// Telemetry only observes (queue depth, pool occupancy, event rate),
    /// so a converted run stays bit-identical to an unconverted one.
    pub fn with_telemetry<Y2: Telemetry>(self, tel: Y2) -> EventDriven<M, Q, R, T, Y2> {
        EventDriven {
            model: self.model,
            queue: self.queue,
            recorder: self.recorder,
            tracer: self.tracer,
            tel,
            clock: self.clock,
            seq: self.seq,
            staged: self.staged,
            batch: self.batch,
            stopped: self.stopped,
            processed: self.processed,
        }
    }

    /// Shared view of the telemetry sink.
    pub fn telemetry(&self) -> &Y {
        &self.tel
    }

    /// Consumes the engine, returning the telemetry sink (e.g. to
    /// `finish()` an `EngineTelemetry` into a `TelemetryReport`).
    pub fn into_telemetry(self) -> Y {
        self.tel
    }

    /// Shared view of the tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consumes the engine, returning the tracer (e.g. to `finish()` a
    /// `RingTracer` into a `SpanTrace`).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Consumes the engine, returning both the model and the tracer —
    /// for callers that need the final state *and* the recorded trace.
    pub fn into_model_and_tracer(self) -> (M, T) {
        (self.model, self.tracer)
    }

    /// Schedules an initial event at absolute time `t`.
    pub fn schedule(&mut self, t: SimTime, event: M::Event) {
        assert!(t >= self.clock, "cannot schedule into the past");
        let ev = ScheduledEvent::new(t, self.seq, event);
        self.seq += 1;
        self.queue.insert(ev);
        self.recorder
            .on_queue_op(self.clock.seconds(), QueueOp::Insert, self.queue.len());
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending events (including any batched but not yet delivered).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.batch.len()
    }

    /// Shared view of the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable view of the model (for instrumentation between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Shared view of the observability recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable view of the recorder (e.g. to add model-level metrics).
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Consumes the engine, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Whether a handler has requested a stop.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Due time of the next event to deliver — the batch head when a
    /// same-timestamp run is in flight, the queue minimum otherwise.
    fn next_time(&mut self) -> Option<SimTime> {
        match self.batch.last() {
            Some(ev) => Some(ev.time),
            None => self.queue.peek_time(),
        }
    }

    /// Delivers the next event, if any. Returns `false` when the event list
    /// is empty or a stop was requested.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let ev = match self.batch.pop() {
            Some(ev) => ev,
            None => {
                // Deliver the queue head directly; only its timestamp
                // *ties* — drained in the same queue call, so structures
                // with contiguous ties pay a single bucket search — go
                // through the batch, reversed so `pop` hands them out in
                // `(time, seq)` order. Singleton runs, the common case
                // under continuous-time models, skip the batch entirely.
                match self.queue.pop_next(&mut self.batch) {
                    Some(ev) => {
                        if !self.batch.is_empty() {
                            self.batch.reverse();
                        }
                        ev
                    }
                    None => return false,
                }
            }
        };
        debug_assert!(ev.time >= self.clock, "event list returned past event");
        if R::ENABLED {
            self.recorder.on_queue_op(
                ev.time.seconds(),
                QueueOp::Pop,
                self.queue.len() + self.batch.len(),
            );
        }
        self.recorder
            .on_advance(self.clock.seconds(), ev.time.seconds());
        self.clock = ev.time;
        self.processed += 1;
        if R::ENABLED {
            self.recorder.on_event(self.clock.seconds());
        }
        if Y::ENABLED && self.tel.tick(self.clock.seconds()) {
            let pending = self.queue.len() + self.batch.len();
            self.tel
                .sample("engine.queue_len", 0, self.clock.seconds(), pending as f64);
            self.tel.peak("engine.queue_high_water", 0, pending as u64);
            if let Some((live, high)) = self.queue.occupancy() {
                self.tel
                    .sample("engine.pool_live", 0, self.clock.seconds(), live as f64);
                self.tel.peak("engine.pool_high_water", 0, high as u64);
            }
        }
        let kind = if T::ENABLED {
            self.model.trace_kind(&ev.event)
        } else {
            SpanKind::DEFAULT
        };
        let track = if T::ENABLED {
            self.model.trace_track(&ev.event)
        } else {
            0
        };
        let token = self.tracer.begin(ev.seq);
        if R::ENABLED {
            // Monitored: stage, then drain with a queue-op hook per insert.
            let mut ctx = Ctx::new(
                self.clock,
                ev.seq,
                &mut self.staged,
                &mut self.seq,
                &mut self.stopped,
            );
            self.model.handle(ev.event, &mut ctx);
            self.tracer
                .record(ev.seq, ev.parent, kind, track, self.clock.seconds(), token);
            for staged in self.staged.drain(..) {
                self.queue.insert(staged);
                self.recorder.on_queue_op(
                    self.clock.seconds(),
                    QueueOp::Insert,
                    self.queue.len() + self.batch.len(),
                );
            }
        } else {
            // Unmonitored: scheduled events go straight into the event
            // list, skipping the staging round-trip. Same insert order,
            // same `(time, seq)` stamps — the trajectory is identical.
            let mut sink = QueueSink(&mut self.queue);
            let mut ctx = Ctx::new(
                self.clock,
                ev.seq,
                &mut sink,
                &mut self.seq,
                &mut self.stopped,
            );
            self.model.handle(ev.event, &mut ctx);
            self.tracer
                .record(ev.seq, ev.parent, kind, track, self.clock.seconds(), token);
        }
        true
    }

    /// Runs until the event list drains or a handler stops the run.
    pub fn run(&mut self) -> RunStats {
        let start = self.processed;
        while self.step() {}
        RunStats::new(self.processed - start, self.clock, 0)
    }

    /// Runs until simulated time `t_end` (inclusive of events at `t_end`),
    /// the event list drains, or a handler stops the run. The clock is left
    /// at `t_end` if the horizon was reached with events still pending.
    pub fn run_until(&mut self, t_end: SimTime) -> RunStats {
        let start = self.processed;
        while !self.stopped {
            match self.next_time() {
                Some(t) if t <= t_end => {
                    self.step();
                }
                _ => break,
            }
        }
        if !self.stopped && self.clock < t_end {
            self.clock = t_end;
        }
        RunStats::new(self.processed - start, self.clock, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{CalendarQueue, LadderQueue, SortedListQueue};
    use lsds_obs::MetricsRecorder;

    /// M/M/1-ish ping-pong used across engine tests.
    struct PingPong {
        hops: u64,
        limit: u64,
        times: Vec<f64>,
    }

    impl Model for PingPong {
        type Event = u8;
        fn handle(&mut self, ev: u8, ctx: &mut Ctx<'_, u8>) {
            self.hops += 1;
            self.times.push(ctx.now().seconds());
            if self.hops >= self.limit {
                ctx.stop();
            } else {
                ctx.schedule_in(0.5, 1 - ev);
            }
        }
    }

    #[test]
    fn runs_to_stop() {
        let mut sim = EventDriven::new(PingPong {
            hops: 0,
            limit: 7,
            times: vec![],
        });
        sim.schedule(SimTime::ZERO, 0);
        let stats = sim.run();
        assert_eq!(stats.events, 7);
        assert_eq!(sim.model().hops, 7);
        assert!((stats.end_time.seconds() - 3.0).abs() < 1e-12);
        assert!(sim.is_stopped());
        assert!(!sim.step(), "stopped engine must not step");
    }

    #[test]
    fn run_until_horizon() {
        let mut sim = EventDriven::new(PingPong {
            hops: 0,
            limit: u64::MAX,
            times: vec![],
        });
        sim.schedule(SimTime::ZERO, 0);
        let stats = sim.run_until(SimTime::new(10.0));
        // events at 0.0, 0.5, ..., 10.0 => 21 events
        assert_eq!(stats.events, 21);
        assert_eq!(sim.now(), SimTime::new(10.0));
        assert_eq!(sim.pending(), 1, "next event remains pending");
    }

    #[test]
    fn clock_monotone_and_times_recorded() {
        let mut sim = EventDriven::new(PingPong {
            hops: 0,
            limit: 100,
            times: vec![],
        });
        sim.schedule(SimTime::new(1.0), 0);
        sim.run();
        let times = &sim.model().times;
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times[0], 1.0);
    }

    #[test]
    fn identical_results_across_queue_structures() {
        fn run_with<Q: EventQueue<u8>>(q: Q) -> Vec<f64> {
            let mut sim = EventDriven::with_queue(
                PingPong {
                    hops: 0,
                    limit: 50,
                    times: vec![],
                },
                q,
            );
            sim.schedule(SimTime::ZERO, 0);
            sim.run();
            sim.into_model().times
        }
        let heap = run_with(BinaryHeapQueue::new());
        assert_eq!(heap, run_with(SortedListQueue::new()));
        assert_eq!(heap, run_with(CalendarQueue::new()));
        assert_eq!(heap, run_with(LadderQueue::new()));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut sim = EventDriven::new(Bad);
        sim.schedule(SimTime::new(5.0), ());
        sim.run();
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        struct Recorder(Vec<u32>);
        impl Model for Recorder {
            type Event = u32;
            fn handle(&mut self, ev: u32, _ctx: &mut Ctx<'_, u32>) {
                self.0.push(ev);
            }
        }
        let mut sim = EventDriven::new(Recorder(vec![]));
        for i in 0..10 {
            sim.schedule(SimTime::new(1.0), i);
        }
        sim.run();
        assert_eq!(sim.model().0, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn metrics_recorder_observes_run() {
        let mut sim = EventDriven::with_recorder(
            PingPong {
                hops: 0,
                limit: 7,
                times: vec![],
            },
            MetricsRecorder::new(),
        );
        sim.schedule(SimTime::ZERO, 0);
        sim.run();
        let reg = sim.recorder().registry();
        assert_eq!(reg.counter("engine.events"), 7);
        assert_eq!(reg.counter("engine.pops"), 7);
        // initial schedule + 6 follow-ups (the 7th hop stops instead)
        assert_eq!(reg.counter("engine.inserts"), 7);
        assert_eq!(reg.gauge("engine.clock"), Some(3.0));
        assert!(reg.series("engine.queue_len").is_some());
    }

    #[test]
    fn telemetry_run_matches_plain_and_samples_queue() {
        use crate::pool::PooledQueue;
        use lsds_obs::{EngineTelemetry, TelemetryConfig, TelemetryReport};
        let run_plain = || {
            let mut sim = EventDriven::new(PingPong {
                hops: 0,
                limit: 64,
                times: vec![],
            });
            sim.schedule(SimTime::ZERO, 0);
            sim.run();
            sim.into_model().times
        };
        let mut sim = EventDriven::with_queue(
            PingPong {
                hops: 0,
                limit: 64,
                times: vec![],
            },
            PooledQueue::new(BinaryHeapQueue::new()),
        )
        .with_telemetry(EngineTelemetry::new(TelemetryConfig::new().every_events(8)));
        sim.schedule(SimTime::ZERO, 0);
        sim.run();
        let (model, tel) = {
            let times = sim.model().times.clone();
            (times, sim.into_telemetry())
        };
        assert_eq!(model, run_plain(), "telemetry must not perturb the run");
        let report = TelemetryReport::merge(vec![tel]);
        assert_eq!(report.events(), 64);
        assert!(report.series_on("engine.queue_len", 0).is_some());
        // Hold model: exactly one event in flight at a time, and the
        // pooled queue reports its slab occupancy through the engine.
        assert_eq!(report.peak("engine.pool_high_water"), 1);
    }

    #[test]
    fn monitored_run_matches_unmonitored() {
        let run = |monitored: bool| {
            let model = PingPong {
                hops: 0,
                limit: 64,
                times: vec![],
            };
            if monitored {
                let mut sim = EventDriven::with_recorder(model, MetricsRecorder::new());
                sim.schedule(SimTime::ZERO, 0);
                sim.run();
                sim.into_model().times
            } else {
                let mut sim = EventDriven::new(model);
                sim.schedule(SimTime::ZERO, 0);
                sim.run();
                sim.into_model().times
            }
        };
        assert_eq!(run(true), run(false));
    }
}
