//! Simulation executors ("engine mechanics" in the taxonomy).
//!
//! One model, four ways to advance it:
//!
//! * [`EventDriven`] — advances by irregular increments to the next pending
//!   event ("useful for modeling events that may occur at any time").
//! * [`TimeDriven`] — advances by fixed increments ("useful for modeling
//!   events that occur at regular time intervals"), paying per-tick cost
//!   even when nothing happens.
//! * [`TraceDriven`] — "proceeds by reading in a set of events that are
//!   collected independently from another environment", interleaved with
//!   any internally scheduled events.
//! * [`Hybrid`] — "comprises both continuous and discrete-event
//!   simulations": a continuous state vector is integrated (RK4) between
//!   discrete events.
//!
//! All four deliver events in `(time, seq)` order and share the [`Model`]
//! callback interface and [`Ctx`] scheduling handle.

mod event_driven;
mod hybrid;
mod time_driven;
mod trace_driven;

pub use event_driven::EventDriven;
pub use hybrid::{Hybrid, HybridModel};
pub use time_driven::TimeDriven;
pub use trace_driven::{TraceDriven, TraceSource};

use crate::event::{EventSeq, ScheduledEvent};
use crate::queue::EventQueue;
use crate::time::SimTime;
use lsds_obs::SpanKind;

/// Destination for events scheduled through a [`Ctx`]: the engine's
/// staging buffer (monitored runs, where the engine emits a queue-op hook
/// per insert; engines that route events elsewhere, like the trace/hybrid
/// executors), or the event list itself (unmonitored sequential runs,
/// which skip the staging round-trip). Either way events arrive in the
/// queue in the same `(time, seq)`-stamped order, so the choice is
/// invisible to the trajectory.
pub(crate) trait EventSink<E> {
    fn accept(&mut self, ev: ScheduledEvent<E>);
}

impl<E> EventSink<E> for Vec<ScheduledEvent<E>> {
    #[inline]
    fn accept(&mut self, ev: ScheduledEvent<E>) {
        self.push(ev);
    }
}

/// Sink that inserts straight into an event list.
pub(crate) struct QueueSink<'q, Q>(pub &'q mut Q);

impl<E, Q: EventQueue<E>> EventSink<E> for QueueSink<'_, Q> {
    #[inline]
    fn accept(&mut self, ev: ScheduledEvent<E>) {
        self.0.insert(ev);
    }
}

/// A discrete-event simulation model: application state plus an event
/// handler. The engine owns the clock and the event list; the model reacts
/// to delivered events and schedules new ones through [`Ctx`].
pub trait Model {
    /// The event payload type.
    type Event;

    /// Handles one delivered event at `ctx.now()`.
    fn handle(&mut self, event: Self::Event, ctx: &mut Ctx<'_, Self::Event>);

    /// Classifies an event for the tracing layer (`lsds_obs::prof`): the
    /// kind name becomes the span/profile label, the tag an optional
    /// domain id (flow, job, site). Only called when tracing is enabled;
    /// the default lumps everything under `"event"`.
    fn trace_kind(&self, _event: &Self::Event) -> SpanKind {
        SpanKind::DEFAULT
    }

    /// Track (entity lane) exported spans for this event appear on. Only
    /// called when tracing is enabled; defaults to a single track.
    fn trace_track(&self, _event: &Self::Event) -> u32 {
        0
    }
}

/// Anything that can schedule events of type `E` at simulated times.
///
/// Substrate components (network models, grid middleware, …) are written
/// against this trait rather than a concrete engine, so a component with
/// its own event sub-type can be embedded in any larger model: the owner
/// wraps its [`Ctx`] with [`Ctx::map`] to translate the component's events
/// into its own event enum.
pub trait Schedule<E> {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Schedules `event` at absolute time `t ≥ now`.
    fn schedule_at(&mut self, t: SimTime, event: E);
    /// Schedules `event` after non-negative delay `dt`.
    fn schedule_in(&mut self, dt: f64, event: E) {
        let t = self.now().after(dt);
        self.schedule_at(t, event);
    }
}

/// Adapter translating a component's events into the owner's event type.
///
/// Created by [`Ctx::map`].
pub struct MappedCtx<'c, 'a, E, F> {
    inner: &'c mut Ctx<'a, E>,
    wrap: F,
}

impl<'c, 'a, E, E2, F: Fn(E2) -> E> Schedule<E2> for MappedCtx<'c, 'a, E, F> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn schedule_at(&mut self, t: SimTime, event: E2) {
        self.inner.schedule_at(t, (self.wrap)(event));
    }
}

/// Scheduling handle passed to [`Model::handle`].
///
/// New events flow into the engine through an `EventSink` — a staging
/// buffer drained after the handler returns, or the event list directly —
/// which keeps the borrow of the model and the engine's other state
/// disjoint without interior mutability.
pub struct Ctx<'a, E> {
    now: SimTime,
    cause: EventSeq,
    staged: &'a mut dyn EventSink<E>,
    seq: &'a mut EventSeq,
    stop: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    pub(crate) fn new(
        now: SimTime,
        cause: EventSeq,
        staged: &'a mut dyn EventSink<E>,
        seq: &'a mut EventSeq,
        stop: &'a mut bool,
    ) -> Self {
        Ctx {
            now,
            cause,
            staged,
            seq,
            stop,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Seq of the event being handled (stamped as the causal parent of
    /// everything scheduled from this context), or
    /// [`crate::event::NO_PARENT`] outside an event handler.
    #[inline]
    pub fn cause(&self) -> EventSeq {
        self.cause
    }

    /// Schedules `event` at absolute time `t` (must not be in the past).
    pub fn schedule_at(&mut self, t: SimTime, event: E) {
        assert!(
            t >= self.now,
            "cannot schedule into the past: {t} < {}",
            self.now
        );
        let seq = *self.seq;
        *self.seq += 1;
        self.staged
            .accept(ScheduledEvent::with_parent(t, seq, self.cause, event));
    }

    /// Schedules `event` after a non-negative delay `dt`.
    pub fn schedule_in(&mut self, dt: f64, event: E) {
        let t = self.now.after(dt);
        let seq = *self.seq;
        *self.seq += 1;
        self.staged
            .accept(ScheduledEvent::with_parent(t, seq, self.cause, event));
    }

    /// Requests that the run stop after this handler returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Wraps this context for a component whose events embed into the
    /// model's event type via `wrap`.
    pub fn map<E2, F: Fn(E2) -> E>(&mut self, wrap: F) -> MappedCtx<'_, 'a, E, F> {
        MappedCtx { inner: self, wrap }
    }
}

impl<'a, E> Schedule<E> for Ctx<'a, E> {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    fn schedule_at(&mut self, t: SimTime, event: E) {
        Ctx::schedule_at(self, t, event)
    }
}

/// Outcome of a run: how much simulated and how much real work was done.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Events delivered to the model.
    pub events: u64,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    /// Fixed time steps taken (0 for purely event-driven engines) — the
    /// cost the paper attributes to time-driven advancement.
    pub ticks: u64,
}

impl RunStats {
    pub(crate) fn new(events: u64, end_time: SimTime, ticks: u64) -> Self {
        RunStats {
            events,
            end_time,
            ticks,
        }
    }
}
