//! Hybrid executor: continuous dynamics between discrete events.
//!
//! "A hybrid simulation comprises both continuous and discrete-event
//! simulations." (§3) The continuous part — e.g. fluid approximations of
//! link backlogs or thermal/load averages — is advanced with a classical
//! fixed-step RK4 integrator between event instants; discrete events
//! interrupt the integration exactly at their timestamps and may read and
//! rewrite the continuous state.

use super::{Ctx, RunStats};
use crate::event::{EventSeq, ScheduledEvent, NO_PARENT};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::SimTime;
use lsds_obs::{NoopRecorder, NoopTracer, QueueOp, Recorder, SpanKind, Tracer};

/// A model with both a continuous state vector and discrete events.
pub trait HybridModel {
    /// Discrete event payload.
    type Event;

    /// Writes `dy/dt` at time `t` into `dydt` (same length as `y`).
    fn derivatives(&self, t: SimTime, y: &[f64], dydt: &mut [f64]);

    /// Handles a discrete event; may inspect and mutate the continuous
    /// state `y` and schedule further events.
    fn handle(&mut self, event: Self::Event, y: &mut [f64], ctx: &mut Ctx<'_, Self::Event>);

    /// Called after each integration step (threshold detection, logging).
    fn on_step(&mut self, _t: SimTime, _y: &mut [f64], _ctx: &mut Ctx<'_, Self::Event>) {}

    /// Classifies a discrete event for the tracing layer (see
    /// [`super::Model::trace_kind`]).
    fn trace_kind(&self, _event: &Self::Event) -> SpanKind {
        SpanKind::DEFAULT
    }

    /// Track exported spans for this event appear on (see
    /// [`super::Model::trace_track`]).
    fn trace_track(&self, _event: &Self::Event) -> u32 {
        0
    }
}

/// Hybrid continuous + discrete-event engine.
pub struct Hybrid<
    M: HybridModel,
    Q: EventQueue<M::Event> = BinaryHeapQueue<<M as HybridModel>::Event>,
    R: Recorder = NoopRecorder,
    T: Tracer = NoopTracer,
> {
    model: M,
    recorder: R,
    tracer: T,
    y: Vec<f64>,
    dt_max: f64,
    queue: Q,
    clock: SimTime,
    seq: EventSeq,
    staged: Vec<ScheduledEvent<M::Event>>,
    stopped: bool,
    processed: u64,
    integration_steps: u64,
    // scratch buffers for RK4
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl<M: HybridModel> Hybrid<M, BinaryHeapQueue<M::Event>, NoopRecorder, NoopTracer> {
    /// Creates a hybrid engine with initial continuous state `y0` and
    /// maximum integration step `dt_max`.
    pub fn new(model: M, y0: Vec<f64>, dt_max: f64) -> Self {
        Self::with_recorder(model, y0, dt_max, NoopRecorder)
    }
}

impl<M: HybridModel, R: Recorder> Hybrid<M, BinaryHeapQueue<M::Event>, R, NoopTracer> {
    /// Creates a monitored hybrid engine.
    pub fn with_recorder(model: M, y0: Vec<f64>, dt_max: f64, recorder: R) -> Self {
        assert!(
            dt_max.is_finite() && dt_max > 0.0,
            "dt_max must be positive"
        );
        let n = y0.len();
        Hybrid {
            model,
            recorder,
            tracer: NoopTracer,
            y: y0,
            dt_max,
            queue: BinaryHeapQueue::new(),
            clock: SimTime::ZERO,
            seq: 0,
            staged: Vec::new(),
            stopped: false,
            processed: 0,
            integration_steps: 0,
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            k4: vec![0.0; n],
            tmp: vec![0.0; n],
        }
    }
}

impl<M: HybridModel, Q: EventQueue<M::Event>, R: Recorder, T: Tracer> Hybrid<M, Q, R, T> {
    /// Swaps the tracer, preserving all engine state (see
    /// [`super::EventDriven::with_tracer`]).
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> Hybrid<M, Q, R, T2> {
        Hybrid {
            model: self.model,
            recorder: self.recorder,
            tracer,
            y: self.y,
            dt_max: self.dt_max,
            queue: self.queue,
            clock: self.clock,
            seq: self.seq,
            staged: self.staged,
            stopped: self.stopped,
            processed: self.processed,
            integration_steps: self.integration_steps,
            k1: self.k1,
            k2: self.k2,
            k3: self.k3,
            k4: self.k4,
            tmp: self.tmp,
        }
    }

    /// Shared view of the tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consumes the engine, returning the tracer.
    pub fn into_tracer(self) -> T {
        self.tracer
    }
    /// Schedules a discrete event.
    pub fn schedule(&mut self, t: SimTime, event: M::Event) {
        assert!(t >= self.clock, "cannot schedule into the past");
        let ev = ScheduledEvent::new(t, self.seq, event);
        self.seq += 1;
        self.queue.insert(ev);
        self.recorder
            .on_queue_op(self.clock.seconds(), QueueOp::Insert, self.queue.len());
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Continuous state.
    pub fn state(&self) -> &[f64] {
        &self.y
    }

    /// Shared view of the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the engine, returning the model and final state.
    pub fn into_parts(self) -> (M, Vec<f64>) {
        (self.model, self.y)
    }

    /// RK4 integration steps taken so far.
    pub fn integration_steps(&self) -> u64 {
        self.integration_steps
    }

    /// Shared view of the observability recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the engine, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    fn rk4_step(&mut self, h: f64) {
        let t = self.clock;
        let n = self.y.len();
        self.model.derivatives(t, &self.y, &mut self.k1);
        for i in 0..n {
            self.tmp[i] = self.y[i] + 0.5 * h * self.k1[i];
        }
        self.model
            .derivatives(t.after(0.5 * h), &self.tmp, &mut self.k2);
        for i in 0..n {
            self.tmp[i] = self.y[i] + 0.5 * h * self.k2[i];
        }
        self.model
            .derivatives(t.after(0.5 * h), &self.tmp, &mut self.k3);
        for i in 0..n {
            self.tmp[i] = self.y[i] + h * self.k3[i];
        }
        self.model.derivatives(t.after(h), &self.tmp, &mut self.k4);
        for i in 0..n {
            self.y[i] += h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
        self.integration_steps += 1;
    }

    /// Integrates the continuous state up to `t_target` in steps of at most
    /// `dt_max`, invoking `on_step` after each step.
    fn integrate_to(&mut self, t_target: SimTime) {
        while self.clock < t_target && !self.stopped {
            let remaining = t_target - self.clock;
            let h = remaining.min(self.dt_max);
            self.rk4_step(h);
            let from = self.clock;
            self.clock += h;
            self.recorder
                .on_advance(from.seconds(), self.clock.seconds());
            // integration steps are not events: anything scheduled from
            // on_step is externally caused as far as the trace DAG goes
            let mut ctx = Ctx::new(
                self.clock,
                NO_PARENT,
                &mut self.staged,
                &mut self.seq,
                &mut self.stopped,
            );
            self.model.on_step(self.clock, &mut self.y, &mut ctx);
            for staged in self.staged.drain(..) {
                self.queue.insert(staged);
                self.recorder
                    .on_queue_op(self.clock.seconds(), QueueOp::Insert, self.queue.len());
            }
        }
    }

    /// Runs until `t_end`, alternating integration and event delivery.
    pub fn run_until(&mut self, t_end: SimTime) -> RunStats {
        let start = self.processed;
        let start_steps = self.integration_steps;
        while !self.stopped {
            match self.queue.peek_time() {
                Some(t) if t <= t_end => {
                    self.integrate_to(t);
                    if self.stopped {
                        break;
                    }
                    let Some(ev) = self.queue.pop_min() else {
                        debug_assert!(false, "peeked event vanished");
                        break;
                    };
                    self.recorder
                        .on_queue_op(ev.time.seconds(), QueueOp::Pop, self.queue.len());
                    // events scheduled by on_step during integration may
                    // precede the one we saw; deliver strictly in order
                    if ev.time > self.clock {
                        // (integration already brought the clock to ev.time)
                        debug_assert!(false, "clock behind event after integrate_to");
                    }
                    self.processed += 1;
                    if R::ENABLED {
                        self.recorder.on_event(self.clock.seconds());
                    }
                    let kind = if T::ENABLED {
                        self.model.trace_kind(&ev.event)
                    } else {
                        SpanKind::DEFAULT
                    };
                    let track = if T::ENABLED {
                        self.model.trace_track(&ev.event)
                    } else {
                        0
                    };
                    let token = self.tracer.begin(ev.seq);
                    let mut ctx = Ctx::new(
                        self.clock,
                        ev.seq,
                        &mut self.staged,
                        &mut self.seq,
                        &mut self.stopped,
                    );
                    self.model.handle(ev.event, &mut self.y, &mut ctx);
                    self.tracer
                        .record(ev.seq, ev.parent, kind, track, self.clock.seconds(), token);
                    for staged in self.staged.drain(..) {
                        self.queue.insert(staged);
                        if R::ENABLED {
                            self.recorder.on_queue_op(
                                self.clock.seconds(),
                                QueueOp::Insert,
                                self.queue.len(),
                            );
                        }
                    }
                }
                _ => {
                    self.integrate_to(t_end);
                    break;
                }
            }
        }
        RunStats::new(
            self.processed - start,
            self.clock,
            self.integration_steps - start_steps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dy/dt = -y, with a discrete event that doubles y.
    struct Decay {
        doubled_at: Vec<f64>,
    }
    impl HybridModel for Decay {
        type Event = &'static str;
        fn derivatives(&self, _t: SimTime, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -y[0];
        }
        fn handle(&mut self, ev: &'static str, y: &mut [f64], ctx: &mut Ctx<'_, &'static str>) {
            assert_eq!(ev, "double");
            y[0] *= 2.0;
            self.doubled_at.push(ctx.now().seconds());
        }
    }

    #[test]
    fn pure_decay_matches_closed_form() {
        let mut sim = Hybrid::new(Decay { doubled_at: vec![] }, vec![1.0], 0.01);
        sim.run_until(SimTime::new(2.0));
        let expected = (-2.0f64).exp();
        assert!(
            (sim.state()[0] - expected).abs() < 1e-6,
            "{} vs {expected}",
            sim.state()[0]
        );
    }

    #[test]
    fn event_interrupts_integration_exactly() {
        let mut sim = Hybrid::new(Decay { doubled_at: vec![] }, vec![1.0], 0.01);
        sim.schedule(SimTime::new(1.0), "double");
        sim.run_until(SimTime::new(2.0));
        // y(2) = e^{-1} * 2 * e^{-1} = 2 e^{-2}
        let expected = 2.0 * (-2.0f64).exp();
        assert!((sim.state()[0] - expected).abs() < 1e-6);
        assert_eq!(sim.model().doubled_at, vec![1.0]);
    }

    #[test]
    fn step_count_scales_with_dt() {
        let mut coarse = Hybrid::new(Decay { doubled_at: vec![] }, vec![1.0], 0.1);
        coarse.run_until(SimTime::new(1.0));
        let mut fine = Hybrid::new(Decay { doubled_at: vec![] }, vec![1.0], 0.001);
        fine.run_until(SimTime::new(1.0));
        assert!(fine.integration_steps() > 50 * coarse.integration_steps());
    }

    /// Threshold detection via on_step: stop when y crosses 0.5.
    struct Threshold {
        crossed: Option<f64>,
    }
    impl HybridModel for Threshold {
        type Event = ();
        fn derivatives(&self, _t: SimTime, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -y[0];
        }
        fn handle(&mut self, _: (), _y: &mut [f64], _ctx: &mut Ctx<'_, ()>) {}
        fn on_step(&mut self, t: SimTime, y: &mut [f64], ctx: &mut Ctx<'_, ()>) {
            if self.crossed.is_none() && y[0] <= 0.5 {
                self.crossed = Some(t.seconds());
                ctx.stop();
            }
        }
    }

    #[test]
    fn threshold_detected_near_ln2() {
        let mut sim = Hybrid::new(Threshold { crossed: None }, vec![1.0], 0.001);
        sim.run_until(SimTime::new(5.0));
        let t = sim.model().crossed.expect("threshold not crossed");
        assert!((t - std::f64::consts::LN_2).abs() < 0.002, "crossed at {t}");
    }
}
