//! Time-driven executor: the clock advances by fixed increments.
//!
//! "A time-driven DES advances by fixed time increments and is useful for
//! modeling events that occur at regular time intervals. An event-driven
//! DES is more efficient than a time-driven DES since it does not step
//! through regular time intervals when no event occurs." (§3) — this engine
//! exists to make that trade-off measurable (experiment E3): it performs a
//! tick of bookkeeping at every step whether or not events are due, and it
//! quantizes delivery times to step boundaries (the fidelity cost of coarse
//! steps).

use super::{Ctx, Model, QueueSink, RunStats};
use crate::event::{EventSeq, ScheduledEvent};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::SimTime;
use lsds_obs::{NoopRecorder, NoopTracer, QueueOp, Recorder, SpanKind, Tracer};

/// Fixed-increment executor over the same [`Model`] interface as
/// [`super::EventDriven`].
///
/// Events scheduled for any time within a step `(k·dt, (k+1)·dt]` are
/// delivered at the step boundary `(k+1)·dt`, in `(time, seq)` order.
pub struct TimeDriven<
    M: Model,
    Q: EventQueue<M::Event> = BinaryHeapQueue<<M as Model>::Event>,
    R: Recorder = NoopRecorder,
    T: Tracer = NoopTracer,
> {
    model: M,
    queue: Q,
    recorder: R,
    tracer: T,
    dt: f64,
    clock: SimTime,
    seq: EventSeq,
    staged: Vec<ScheduledEvent<M::Event>>,
    /// Same-timestamp run drained via `pop_run`, held in reverse `(time,
    /// seq)` order (see [`super::EventDriven`]'s batch field). Logically
    /// still pending; non-empty across ticks only after a mid-run stop.
    batch: Vec<ScheduledEvent<M::Event>>,
    stopped: bool,
    processed: u64,
    ticks: u64,
}

impl<M: Model> TimeDriven<M, BinaryHeapQueue<M::Event>, NoopRecorder, NoopTracer> {
    /// Creates a time-driven engine with step `dt` and the default queue.
    pub fn new(model: M, dt: f64) -> Self {
        Self::with_queue(model, dt, BinaryHeapQueue::new())
    }
}

impl<M: Model, Q: EventQueue<M::Event>> TimeDriven<M, Q, NoopRecorder, NoopTracer> {
    /// Creates a time-driven engine with step `dt` over a specific queue.
    pub fn with_queue(model: M, dt: f64, queue: Q) -> Self {
        Self::with_parts(model, dt, queue, NoopRecorder)
    }
}

impl<M: Model, R: Recorder> TimeDriven<M, BinaryHeapQueue<M::Event>, R, NoopTracer> {
    /// Creates a monitored time-driven engine with the default queue.
    pub fn with_recorder(model: M, dt: f64, recorder: R) -> Self {
        Self::with_parts(model, dt, BinaryHeapQueue::new(), recorder)
    }
}

impl<M: Model, Q: EventQueue<M::Event>, R: Recorder> TimeDriven<M, Q, R, NoopTracer> {
    /// Creates a time-driven engine from an explicit queue and recorder.
    pub fn with_parts(model: M, dt: f64, queue: Q, recorder: R) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "step must be positive");
        TimeDriven {
            model,
            queue,
            recorder,
            tracer: NoopTracer,
            dt,
            clock: SimTime::ZERO,
            seq: 0,
            staged: Vec::new(),
            batch: Vec::new(),
            stopped: false,
            processed: 0,
            ticks: 0,
        }
    }
}

impl<M: Model, Q: EventQueue<M::Event>, R: Recorder, T: Tracer> TimeDriven<M, Q, R, T> {
    /// Swaps the tracer, preserving all engine state (see
    /// [`super::EventDriven::with_tracer`]).
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> TimeDriven<M, Q, R, T2> {
        TimeDriven {
            model: self.model,
            queue: self.queue,
            recorder: self.recorder,
            tracer,
            dt: self.dt,
            clock: self.clock,
            seq: self.seq,
            staged: self.staged,
            batch: self.batch,
            stopped: self.stopped,
            processed: self.processed,
            ticks: self.ticks,
        }
    }

    /// Shared view of the tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consumes the engine, returning the tracer.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Schedules an initial event.
    pub fn schedule(&mut self, t: SimTime, event: M::Event) {
        let ev = ScheduledEvent::new(t, self.seq, event);
        self.seq += 1;
        self.queue.insert(ev);
        self.recorder
            .on_queue_op(self.clock.seconds(), QueueOp::Insert, self.queue.len());
    }

    /// Current simulated time (always a step boundary after a run).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending events (including any batched but not yet delivered).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.batch.len()
    }

    /// Shared view of the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Shared view of the observability recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the engine, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Advances one fixed step, delivering every event due by the new
    /// clock. Returns `false` once stopped.
    pub fn tick(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        self.ticks += 1;
        let next = self.clock.after(self.dt);
        self.recorder
            .on_advance(self.clock.seconds(), next.seconds());
        self.clock = next;
        loop {
            if self.stopped {
                break;
            }
            let ev = match self.batch.pop() {
                Some(ev) => ev,
                None => {
                    match self.queue.peek_time() {
                        Some(t) if t <= next => {}
                        _ => break,
                    }
                    // Deliver the queue head directly; only its timestamp
                    // ties (drained in the same queue call) go through the
                    // batch, reversed so `pop` hands them out in
                    // `(time, seq)` order.
                    match self.queue.pop_next(&mut self.batch) {
                        Some(ev) => {
                            if !self.batch.is_empty() {
                                self.batch.reverse();
                            }
                            ev
                        }
                        None => break,
                    }
                }
            };
            if R::ENABLED {
                self.recorder.on_queue_op(
                    next.seconds(),
                    QueueOp::Pop,
                    self.queue.len() + self.batch.len(),
                );
            }
            self.processed += 1;
            if R::ENABLED {
                self.recorder.on_event(next.seconds());
            }
            let kind = if T::ENABLED {
                self.model.trace_kind(&ev.event)
            } else {
                SpanKind::DEFAULT
            };
            let track = if T::ENABLED {
                self.model.trace_track(&ev.event)
            } else {
                0
            };
            let token = self.tracer.begin(ev.seq);
            // Quantized delivery: the model observes the step boundary.
            if R::ENABLED {
                // Monitored: stage, then drain with a hook per insert.
                let mut ctx = Ctx::new(
                    next,
                    ev.seq,
                    &mut self.staged,
                    &mut self.seq,
                    &mut self.stopped,
                );
                self.model.handle(ev.event, &mut ctx);
                self.tracer
                    .record(ev.seq, ev.parent, kind, track, next.seconds(), token);
                for staged in self.staged.drain(..) {
                    self.queue.insert(staged);
                    self.recorder.on_queue_op(
                        next.seconds(),
                        QueueOp::Insert,
                        self.queue.len() + self.batch.len(),
                    );
                }
            } else {
                // Unmonitored: insert straight into the event list (same
                // insert order and stamps — identical trajectory).
                let mut sink = QueueSink(&mut self.queue);
                let mut ctx = Ctx::new(next, ev.seq, &mut sink, &mut self.seq, &mut self.stopped);
                self.model.handle(ev.event, &mut ctx);
                self.tracer
                    .record(ev.seq, ev.parent, kind, track, next.seconds(), token);
            }
        }
        !self.stopped
    }

    /// Runs steps until `t_end` or until a handler stops the run.
    pub fn run_until(&mut self, t_end: SimTime) -> RunStats {
        let start_events = self.processed;
        let start_ticks = self.ticks;
        while !self.stopped && self.clock < t_end {
            self.tick();
        }
        RunStats::new(
            self.processed - start_events,
            self.clock,
            self.ticks - start_ticks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Accumulator {
        seen: Vec<f64>,
    }
    impl Model for Accumulator {
        type Event = f64;
        fn handle(&mut self, original_time: f64, ctx: &mut Ctx<'_, f64>) {
            // record the quantization error between true and delivered time
            self.seen.push(ctx.now().seconds() - original_time);
        }
    }

    #[test]
    fn events_are_quantized_to_step_boundaries() {
        let mut sim = TimeDriven::new(Accumulator { seen: vec![] }, 1.0);
        for &t in &[0.2, 0.9, 1.0, 1.1, 2.5] {
            sim.schedule(SimTime::new(t), t);
        }
        let stats = sim.run_until(SimTime::new(5.0));
        assert_eq!(stats.events, 5);
        assert_eq!(stats.ticks, 5);
        // errors are in [0, dt)
        for &e in &sim.model().seen {
            assert!((0.0..1.0).contains(&e), "quantization error {e}");
        }
    }

    #[test]
    fn ticks_accrue_even_without_events() {
        let mut sim = TimeDriven::new(Accumulator { seen: vec![] }, 0.1);
        sim.schedule(SimTime::new(0.05), 0.05);
        let stats = sim.run_until(SimTime::new(100.0));
        assert_eq!(stats.events, 1);
        // 1000 steps of 0.1 (±1 for floating-point accumulation)
        assert!(
            (1000..=1001).contains(&stats.ticks),
            "pays for every empty step: {} ticks",
            stats.ticks
        );
    }

    #[test]
    fn finer_steps_reduce_quantization_error() {
        fn max_err(dt: f64) -> f64 {
            let mut sim = TimeDriven::new(Accumulator { seen: vec![] }, dt);
            for i in 0..50 {
                let t = 0.137 * (i as f64 + 1.0);
                sim.schedule(SimTime::new(t), t);
            }
            sim.run_until(SimTime::new(10.0));
            sim.model().seen.iter().cloned().fold(0.0, f64::max)
        }
        assert!(max_err(0.01) < max_err(1.0));
    }

    #[test]
    fn stop_from_handler() {
        struct StopAt3 {
            n: u32,
        }
        impl Model for StopAt3 {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
                self.n += 1;
                ctx.schedule_in(1.0, ());
                if self.n == 3 {
                    ctx.stop();
                }
            }
        }
        let mut sim = TimeDriven::new(StopAt3 { n: 0 }, 0.5);
        sim.schedule(SimTime::ZERO, ());
        sim.run_until(SimTime::new(1000.0));
        assert_eq!(sim.model().n, 3);
    }
}
