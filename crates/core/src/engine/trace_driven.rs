//! Trace-driven executor: external, pre-collected events drive the model.
//!
//! "A trace-driven DES proceeds by reading in a set of events that are
//! collected independently from another environment and are suitable for
//! modeling a system that has executed before in another environment." (§3)
//! The paper's input-data axis distinguishes simulators that accept
//! monitored data sets (MONARC 2 via MonALISA) from pure generators
//! (ChicagoSim); this engine is the replay half of that axis —
//! `lsds-trace` supplies [`TraceSource`]s from recorded files or synthetic
//! generators.

use super::{Ctx, Model, RunStats};
use crate::event::{EventSeq, ScheduledEvent, NO_PARENT};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::SimTime;
use lsds_obs::{NoopRecorder, NoopTracer, QueueOp, Recorder, SpanKind, Tracer};

/// A time-ordered stream of externally collected events.
///
/// Implementations must yield records with non-decreasing timestamps; the
/// engine validates this and panics on a disordered trace, because a
/// disordered monitored-data file is a corrupt input, not a model state.
pub trait TraceSource {
    /// The replayed event payload.
    type Record;
    /// Returns the next record, or `None` at end of trace.
    fn next_record(&mut self) -> Option<(SimTime, Self::Record)>;
}

impl<R, I: Iterator<Item = (SimTime, R)>> TraceSource for I {
    type Record = R;
    fn next_record(&mut self) -> Option<(SimTime, R)> {
        self.next()
    }
}

/// Replays a [`TraceSource`] into a [`Model`], merging the external stream
/// with any events the model schedules internally.
///
/// External records and internal events are delivered in global `(time,
/// arrival)` order; ties go to the internal event scheduled first, then the
/// trace record, matching the convention that replayed inputs are causes
/// and internal events are their consequences.
pub struct TraceDriven<
    M: Model,
    S: TraceSource<Record = M::Event>,
    Q = BinaryHeapQueue<<M as Model>::Event>,
    R: Recorder = NoopRecorder,
    T: Tracer = NoopTracer,
> where
    Q: EventQueue<M::Event>,
{
    model: M,
    source: S,
    recorder: R,
    tracer: T,
    lookahead: Option<(SimTime, M::Event)>,
    last_trace_time: SimTime,
    queue: Q,
    clock: SimTime,
    seq: EventSeq,
    staged: Vec<ScheduledEvent<M::Event>>,
    stopped: bool,
    processed: u64,
    replayed: u64,
}

impl<M: Model, S: TraceSource<Record = M::Event>>
    TraceDriven<M, S, BinaryHeapQueue<M::Event>, NoopRecorder, NoopTracer>
{
    /// Creates a trace-driven engine with the default internal queue.
    pub fn new(model: M, source: S) -> Self {
        Self::with_queue(model, source, BinaryHeapQueue::new())
    }
}

impl<M: Model, S: TraceSource<Record = M::Event>, Q: EventQueue<M::Event>>
    TraceDriven<M, S, Q, NoopRecorder, NoopTracer>
{
    /// Creates a trace-driven engine over a specific internal queue.
    pub fn with_queue(model: M, source: S, queue: Q) -> Self {
        Self::with_parts(model, source, queue, NoopRecorder)
    }
}

impl<M: Model, S: TraceSource<Record = M::Event>, R: Recorder>
    TraceDriven<M, S, BinaryHeapQueue<M::Event>, R, NoopTracer>
{
    /// Creates a monitored trace-driven engine with the default queue.
    pub fn with_recorder(model: M, source: S, recorder: R) -> Self {
        Self::with_parts(model, source, BinaryHeapQueue::new(), recorder)
    }
}

impl<M: Model, S: TraceSource<Record = M::Event>, Q: EventQueue<M::Event>, R: Recorder>
    TraceDriven<M, S, Q, R, NoopTracer>
{
    /// Creates a trace-driven engine from explicit parts.
    pub fn with_parts(model: M, source: S, queue: Q, recorder: R) -> Self {
        TraceDriven {
            model,
            source,
            recorder,
            tracer: NoopTracer,
            lookahead: None,
            last_trace_time: SimTime::ZERO,
            queue,
            clock: SimTime::ZERO,
            seq: 0,
            staged: Vec::new(),
            stopped: false,
            processed: 0,
            replayed: 0,
        }
    }
}

impl<
        M: Model,
        S: TraceSource<Record = M::Event>,
        Q: EventQueue<M::Event>,
        R: Recorder,
        T: Tracer,
    > TraceDriven<M, S, Q, R, T>
{
    /// Swaps the tracer, preserving all engine state (see
    /// [`super::EventDriven::with_tracer`]).
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> TraceDriven<M, S, Q, R, T2> {
        TraceDriven {
            model: self.model,
            source: self.source,
            recorder: self.recorder,
            tracer,
            lookahead: self.lookahead,
            last_trace_time: self.last_trace_time,
            queue: self.queue,
            clock: self.clock,
            seq: self.seq,
            staged: self.staged,
            stopped: self.stopped,
            processed: self.processed,
            replayed: self.replayed,
        }
    }

    /// Shared view of the tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consumes the engine, returning the tracer.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Shared view of the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Records replayed from the trace so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Shared view of the observability recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the engine, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    fn fill_lookahead(&mut self) {
        if self.lookahead.is_none() {
            if let Some((t, r)) = self.source.next_record() {
                assert!(
                    t >= self.last_trace_time,
                    "trace is not time-ordered: {t} after {}",
                    self.last_trace_time
                );
                self.last_trace_time = t;
                self.lookahead = Some((t, r));
            }
        }
    }

    fn deliver(&mut self, t: SimTime, id: EventSeq, parent: EventSeq, event: M::Event) {
        debug_assert!(t >= self.clock);
        if R::ENABLED {
            self.recorder.on_advance(self.clock.seconds(), t.seconds());
        }
        self.clock = t;
        self.processed += 1;
        if R::ENABLED {
            self.recorder.on_event(t.seconds());
        }
        let kind = if T::ENABLED {
            self.model.trace_kind(&event)
        } else {
            SpanKind::DEFAULT
        };
        let track = if T::ENABLED {
            self.model.trace_track(&event)
        } else {
            0
        };
        let token = self.tracer.begin(id);
        let mut ctx = Ctx::new(
            self.clock,
            id,
            &mut self.staged,
            &mut self.seq,
            &mut self.stopped,
        );
        self.model.handle(event, &mut ctx);
        self.tracer
            .record(id, parent, kind, track, self.clock.seconds(), token);
        for staged in self.staged.drain(..) {
            self.queue.insert(staged);
            self.recorder
                .on_queue_op(self.clock.seconds(), QueueOp::Insert, self.queue.len());
        }
    }

    /// Delivers the next event (trace or internal). Returns `false` when
    /// both streams are exhausted or the run was stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        self.fill_lookahead();
        let trace_t = self.lookahead.as_ref().map(|(t, _)| *t);
        let queue_t = self.queue.peek_time();
        // pick the earlier stream (queue wins ties), then pop exactly one
        let take_queue = match (trace_t, queue_t) {
            (None, None) => return false,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(tt), Some(qt)) => qt <= tt,
        };
        if take_queue {
            let Some(ev) = self.queue.pop_min() else {
                debug_assert!(false, "peeked event vanished");
                return false;
            };
            self.recorder
                .on_queue_op(ev.time.seconds(), QueueOp::Pop, self.queue.len());
            self.deliver(ev.time, ev.seq, ev.parent, ev.event);
        } else {
            let Some((t, r)) = self.lookahead.take() else {
                debug_assert!(false, "lookahead vanished");
                return false;
            };
            // Replayed records get a fresh event id; done unconditionally
            // (not only when traced) so the seq stream — and with it every
            // tie-break downstream — is identical with tracing on or off.
            let id = self.seq;
            self.seq += 1;
            self.replayed += 1;
            self.deliver(t, id, NO_PARENT, r);
        }
        true
    }

    /// Replays until both streams drain or a handler stops the run.
    pub fn run(&mut self) -> RunStats {
        let start = self.processed;
        while self.step() {}
        RunStats::new(self.processed - start, self.clock, 0)
    }

    /// Replays events up to and including `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) -> RunStats {
        let start = self.processed;
        loop {
            if self.stopped {
                break;
            }
            self.fill_lookahead();
            let next = match (
                self.lookahead.as_ref().map(|(t, _)| *t),
                self.queue.peek_time(),
            ) {
                (None, None) => break,
                (Some(t), None) => t,
                (None, Some(t)) => t,
                (Some(a), Some(b)) => a.min(b),
            };
            if next > t_end {
                break;
            }
            self.step();
        }
        if !self.stopped && self.clock < t_end {
            self.clock = t_end;
        }
        RunStats::new(self.processed - start, self.clock, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        External(u32),
        Internal(u32),
    }

    struct Echo {
        log: Vec<(f64, Ev)>,
    }
    impl Model for Echo {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            if let Ev::External(n) = ev {
                // every external record spawns an internal follow-up
                ctx.schedule_in(0.25, Ev::Internal(n));
            }
            self.log.push((ctx.now().seconds(), ev));
        }
    }

    fn trace(records: Vec<(f64, u32)>) -> impl TraceSource<Record = Ev> {
        records
            .into_iter()
            .map(|(t, n)| (SimTime::new(t), Ev::External(n)))
    }

    #[test]
    fn replays_in_order_with_internal_events() {
        let mut sim = TraceDriven::new(
            Echo { log: vec![] },
            trace(vec![(1.0, 1), (2.0, 2), (3.0, 3)]),
        );
        let stats = sim.run();
        assert_eq!(stats.events, 6);
        assert_eq!(sim.replayed(), 3);
        let log = &sim.model().log;
        let times: Vec<f64> = log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1.0, 1.25, 2.0, 2.25, 3.0, 3.25]);
    }

    #[test]
    fn internal_event_wins_tie() {
        // external at 1.25 ties with the internal follow-up of t=1.0
        let mut sim = TraceDriven::new(Echo { log: vec![] }, trace(vec![(1.0, 1), (1.25, 2)]));
        sim.run();
        let log = &sim.model().log;
        assert_eq!(log[1].1, Ev::Internal(1));
        assert_eq!(log[2].1, Ev::External(2));
    }

    #[test]
    fn run_until_cuts_at_horizon() {
        let mut sim = TraceDriven::new(
            Echo { log: vec![] },
            trace(vec![(1.0, 1), (5.0, 2), (9.0, 3)]),
        );
        let stats = sim.run_until(SimTime::new(4.0));
        assert_eq!(sim.replayed(), 1);
        assert_eq!(stats.events, 2); // external 1 + its internal follow-up
        assert_eq!(sim.now(), SimTime::new(4.0));
        // the rest still replays afterwards
        sim.run();
        assert_eq!(sim.replayed(), 3);
    }

    #[test]
    #[should_panic]
    fn disordered_trace_panics() {
        let mut sim = TraceDriven::new(Echo { log: vec![] }, trace(vec![(2.0, 1), (1.0, 2)]));
        sim.run();
    }

    #[test]
    fn empty_trace_is_fine() {
        let mut sim = TraceDriven::new(Echo { log: vec![] }, trace(vec![]));
        let stats = sim.run();
        assert_eq!(stats.events, 0);
    }
}
