//! Simulated time.
//!
//! The taxonomy's *time base* category distinguishes discrete from
//! continuous time. `SimTime` is a totally ordered, finite `f64` timestamp:
//! the discrete-event engines only ever touch it at event instants, the
//! hybrid engine advances it continuously between events. Time is "an
//! inherent property in case of large scale distributed systems" (§2), so it
//! is a first-class, NaN-free type rather than a bare float.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds. Always finite and non-NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a timestamp; panics on NaN or infinite input.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "SimTime must be finite, got {seconds}");
        SimTime(seconds)
    }

    /// The timestamp in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// `self + dt`, panicking if `dt` is negative or non-finite.
    #[inline]
    pub fn after(self, dt: f64) -> SimTime {
        assert!(dt.is_finite() && dt >= 0.0, "invalid delay {dt}");
        SimTime(self.0 + dt)
    }

    /// The larger of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Tolerance used by [`SimTime::approx_eq`]: ~1 ns at second scale,
    /// far above f64 rounding noise but far below any modelled delay.
    pub const EPSILON: f64 = 1e-9;

    /// True when the two timestamps are within [`SimTime::EPSILON`] of each
    /// other. Exact float `==` on simulated time is flagged by the
    /// `float-eq` lint; use ordering where possible and this helper where a
    /// coincidence test is genuinely meant.
    #[inline]
    pub fn approx_eq(self, other: SimTime) -> bool {
        (self.0 - other.0).abs() <= Self::EPSILON
    }

    /// True when the two timestamps carry identical bits — the engine's
    /// *tie* test. Events are delivered as a same-timestamp run only when
    /// their stamps are exactly equal (ties inherit their stamp from the
    /// same arithmetic), so [`SimTime::approx_eq`]'s tolerance would be
    /// wrong here: it would merge distinct instants.
    #[inline]
    pub fn same_instant(self, other: SimTime) -> bool {
        let a = self.0.to_bits();
        let b = other.0.to_bits();
        a == b
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite-by-construction, so total_cmp agrees with numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, dt: f64) -> SimTime {
        self.after(dt)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, dt: f64) {
        *self = self.after(dt);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl From<f64> for SimTime {
    fn from(s: f64) -> Self {
        SimTime::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(SimTime::new(1.0) < SimTime::new(2.0));
        assert!(SimTime::new(2.0) == SimTime::new(2.0));
        assert_eq!(SimTime::ZERO.max(SimTime::new(3.0)), SimTime::new(3.0));
        assert_eq!(SimTime::new(5.0).min(SimTime::new(3.0)), SimTime::new(3.0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.5) + 2.5;
        assert_eq!(t.seconds(), 4.0);
        assert_eq!(t - SimTime::new(1.0), 3.0);
        let mut u = SimTime::ZERO;
        u += 1.0;
        assert_eq!(u.seconds(), 1.0);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn negative_delay_rejected() {
        SimTime::ZERO.after(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::new(0.5).to_string(), "0.500000s");
    }

    #[test]
    fn approx_eq_tolerates_rounding_noise_only() {
        let t = SimTime::new(1.0);
        assert!(t.approx_eq(SimTime::new(1.0 + 1e-12)));
        assert!(t.approx_eq(t));
        assert!(!t.approx_eq(SimTime::new(1.0 + 1e-6)));
        assert!(!SimTime::ZERO.approx_eq(SimTime::new(SimTime::EPSILON * 2.0)));
    }
}
