//! Pooled event storage: fixed-size keys in the queue, payloads in a slab.
//!
//! Every [`EventQueue`] structure shuffles whole
//! [`ScheduledEvent`]s while sifting, rotating buckets, or resizing. With a
//! large payload `E` that movement dominates queue cost; with a boxed
//! payload every schedule is a heap allocation. [`PooledQueue`] splits the
//! two concerns: the inner queue orders lightweight `ScheduledEvent<u32>`
//! records (time, seq, parent, pool slot — 32 bytes), while payloads sit
//! still in an [`EventPool`] free-list slab until delivery. Pool slots are
//! recycled LIFO, so a steady-state simulation reaches a fixed working set
//! and schedules events with **zero** per-event heap allocation.
//!
//! Ordering is untouched: the inner queue orders the same `(time, seq)`
//! keys it would order for the unpooled events, so a pooled engine run is
//! bit-identical to an unpooled one (asserted by the engine-equivalence
//! suite and the slot-recycling property test).
//!
//! Payloads that are already small and `Copy` (a `u32` entity handle, a
//! small event enum) gain nothing from the indirection — benchmarks show
//! the pool pays for itself once `size_of::<E>()` clearly exceeds the
//! 32-byte key record. `QueueKind::build_pooled` exists so experiments can
//! race both representations.

use crate::arena::Slab;
use crate::event::ScheduledEvent;
use crate::queue::{EventQueue, QueueKind};
use crate::time::SimTime;

/// Free-list slab holding scheduled-but-undelivered payloads.
///
/// A thin wrapper over [`Slab`] so the intent (event payload parking) and
/// the recycling contract are explicit in engine code.
#[derive(Debug, Default)]
pub struct EventPool<E> {
    slab: Slab<E>,
}

impl<E> EventPool<E> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        EventPool { slab: Slab::new() }
    }

    /// Parks a payload, returning its slot.
    #[inline]
    pub fn park(&mut self, payload: E) -> u32 {
        self.slab.insert(payload)
    }

    /// Takes a payload out, recycling the slot.
    #[inline]
    pub fn claim(&mut self, slot: u32) -> Option<E> {
        self.slab.remove(slot)
    }

    /// Borrows a parked payload without vacating its slot. Optimistic
    /// engines deliver payloads by reference/clone and keep the slot
    /// occupied until the event is past GVT, so a rollback can re-deliver
    /// the same payload without re-parking it.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&E> {
        self.slab.get(slot)
    }

    /// Payloads currently parked.
    #[inline]
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True when nothing is parked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Distinct slots ever allocated — the pool's high-water mark. A
    /// recycling pool under a steady hold-model workload keeps this at the
    /// peak concurrent event count instead of the total event count.
    #[inline]
    pub fn slot_high_water(&self) -> u32 {
        self.slab.slot_bound()
    }
}

/// An [`EventQueue`] adaptor that parks payloads in an [`EventPool`] and
/// orders fixed-size slot records in the wrapped queue `Q`.
pub struct PooledQueue<E, Q: EventQueue<u32>> {
    pool: EventPool<E>,
    inner: Q,
    /// Reused between `pop_run` calls so batch draining stays
    /// allocation-free in steady state.
    scratch: Vec<ScheduledEvent<u32>>,
}

impl<E, Q: EventQueue<u32>> PooledQueue<E, Q> {
    /// Wraps `inner`, pooling payloads of type `E`.
    pub fn new(inner: Q) -> Self {
        PooledQueue {
            pool: EventPool::new(),
            inner,
            scratch: Vec::new(),
        }
    }

    /// The pool's slot high-water mark (see
    /// [`EventPool::slot_high_water`]).
    pub fn slot_high_water(&self) -> u32 {
        self.pool.slot_high_water()
    }
}

impl<E, Q: EventQueue<u32>> EventQueue<E> for PooledQueue<E, Q> {
    #[inline]
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        let slot = self.pool.park(ev.event);
        self.inner.insert(ScheduledEvent::with_parent(
            ev.time, ev.seq, ev.parent, slot,
        ));
    }

    #[inline]
    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        let key = self.inner.pop_min()?;
        let Some(payload) = self.pool.claim(key.event) else {
            debug_assert!(false, "queue returned a vacant pool slot");
            return None;
        };
        Some(ScheduledEvent::with_parent(
            key.time, key.seq, key.parent, payload,
        ))
    }

    fn pop_run(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        self.scratch.clear();
        let mut keys = std::mem::take(&mut self.scratch);
        let n = self.inner.pop_run(&mut keys);
        out.reserve(n);
        for key in keys.drain(..) {
            let Some(payload) = self.pool.claim(key.event) else {
                debug_assert!(false, "queue returned a vacant pool slot");
                continue;
            };
            out.push(ScheduledEvent::with_parent(
                key.time, key.seq, key.parent, payload,
            ));
        }
        self.scratch = keys;
        n
    }

    fn pop_next(&mut self, ties: &mut Vec<ScheduledEvent<E>>) -> Option<ScheduledEvent<E>> {
        self.scratch.clear();
        let mut keys = std::mem::take(&mut self.scratch);
        let first = self.inner.pop_next(&mut keys);
        // Claim the head before the ties so pool slots recycle in the same
        // `(time, seq)` order `pop_run` frees them in.
        let head = first.and_then(|key| {
            let payload = self.pool.claim(key.event);
            debug_assert!(payload.is_some(), "queue returned a vacant pool slot");
            payload.map(|p| ScheduledEvent::with_parent(key.time, key.seq, key.parent, p))
        });
        ties.reserve(keys.len());
        for key in keys.drain(..) {
            let Some(payload) = self.pool.claim(key.event) else {
                debug_assert!(false, "queue returned a vacant pool slot");
                continue;
            };
            ties.push(ScheduledEvent::with_parent(
                key.time, key.seq, key.parent, payload,
            ));
        }
        self.scratch = keys;
        head
    }

    #[inline]
    fn peek_time(&mut self) -> Option<SimTime> {
        self.inner.peek_time()
    }

    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn occupancy(&self) -> Option<(usize, usize)> {
        Some((self.pool.len(), self.pool.slot_high_water() as usize))
    }

    fn name(&self) -> &'static str {
        match self.inner.name() {
            "binary-heap" => "pooled-binary-heap",
            "sorted-list" => "pooled-sorted-list",
            "calendar" => "pooled-calendar",
            "ladder" => "pooled-ladder",
            _ => "pooled",
        }
    }
}

impl QueueKind {
    /// Builds a queue of this kind behind a payload pool: the structure
    /// orders 32-byte slot records while payloads stay parked in a
    /// free-list slab (see [`PooledQueue`]).
    pub fn build_pooled<E: 'static>(self) -> Box<dyn EventQueue<E>> {
        match self {
            QueueKind::BinaryHeap => {
                Box::new(PooledQueue::new(crate::queue::BinaryHeapQueue::<u32>::new()))
            }
            QueueKind::SortedList => {
                Box::new(PooledQueue::new(crate::queue::SortedListQueue::<u32>::new()))
            }
            QueueKind::Calendar => {
                Box::new(PooledQueue::new(crate::queue::CalendarQueue::<u32>::new()))
            }
            QueueKind::Ladder => {
                Box::new(PooledQueue::new(crate::queue::LadderQueue::<u32>::new()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::conformance;
    use crate::queue::BinaryHeapQueue;

    #[test]
    fn pooled_conformance_all_kinds() {
        for kind in QueueKind::ALL {
            conformance::fifo_within_same_time(kind.build_pooled::<u32>());
            conformance::ordered_output(kind.build_pooled::<u64>(), 2000, 31);
            conformance::interleaved_hold_model(kind.build_pooled::<u64>(), 32);
            conformance::peek_agrees_with_pop(kind.build_pooled::<u32>(), 33);
            conformance::empty_behaviour(kind.build_pooled::<u32>());
            conformance::clustered_times(kind.build_pooled::<u64>(), 34);
        }
    }

    #[test]
    fn pool_recycles_slots_lifo() {
        let mut q = PooledQueue::new(BinaryHeapQueue::<u32>::new());
        for s in 0..100u64 {
            q.insert(ScheduledEvent::new(SimTime::new(s as f64), s, s));
        }
        for _ in 0..100 {
            q.pop_min().unwrap();
        }
        // hold-model steady state: one live event at a time from here on
        for s in 100..200u64 {
            q.insert(ScheduledEvent::new(SimTime::new(s as f64), s, s));
            assert_eq!(q.pop_min().unwrap().event, s);
        }
        assert_eq!(
            q.slot_high_water(),
            100,
            "steady state must not grow the pool"
        );
    }

    /// Drives a pooled queue and its unpooled twin through one randomized
    /// tie-heavy hold-model script, mixing all three pop flavors
    /// (`pop_min`, `pop_run`, `pop_next`), and asserts the delivered
    /// `(time-bits, seq, payload)` streams are identical — slot recycling
    /// must never reorder `(time, seq)` ties. Also pins the recycling
    /// contract itself: the slab's high-water mark equals the peak number
    /// of concurrently parked events, not the total insert count.
    fn pooled_tracks_unpooled<Qi, Qr>(inner: Qi, mut plain: Qr, seed: u64)
    where
        Qi: EventQueue<u32>,
        Qr: EventQueue<u64>,
    {
        use lsds_stats::SimRng;
        fn key3(ev: &ScheduledEvent<u64>) -> (u64, u64, u64) {
            (ev.time.seconds().to_bits(), ev.seq, ev.event)
        }
        let mut pooled = PooledQueue::new(inner);
        let mut rng = SimRng::new(seed);
        let mut seq = 0u64;
        let mut now = 0.0f64;
        let mut live = 0usize;
        let mut peak_live = 0usize;
        let (mut run_a, mut run_b) = (Vec::new(), Vec::new());
        for _ in 0..4000 {
            if live == 0 || rng.next_below(3) > 0 {
                // coarse offsets: repeated zero deltas pile up large tie runs
                let dt = [0.0, 0.0, 0.5, 1.0][rng.next_below(4) as usize];
                let t = SimTime::new(now + dt);
                pooled.insert(ScheduledEvent::new(t, seq, seq));
                plain.insert(ScheduledEvent::new(t, seq, seq));
                seq += 1;
                live += 1;
                peak_live = peak_live.max(live);
            } else {
                match rng.next_below(3) {
                    0 => {
                        let a = pooled.pop_min().expect("pooled empty before plain");
                        let b = plain.pop_min().expect("plain empty before pooled");
                        assert_eq!(key3(&a), key3(&b), "pop_min diverged");
                        now = a.time.seconds();
                        live -= 1;
                    }
                    1 => {
                        run_a.clear();
                        run_b.clear();
                        let na = pooled.pop_run(&mut run_a);
                        let nb = plain.pop_run(&mut run_b);
                        assert_eq!(na, nb, "pop_run length diverged");
                        for (a, b) in run_a.iter().zip(&run_b) {
                            assert_eq!(key3(a), key3(b), "pop_run diverged");
                        }
                        if let Some(last) = run_a.last() {
                            now = last.time.seconds();
                        }
                        live -= na;
                    }
                    _ => {
                        run_a.clear();
                        run_b.clear();
                        let a = pooled.pop_next(&mut run_a).expect("pooled empty");
                        let b = plain.pop_next(&mut run_b).expect("plain empty");
                        assert_eq!(key3(&a), key3(&b), "pop_next head diverged");
                        assert_eq!(run_a.len(), run_b.len(), "tie count diverged");
                        for (a, b) in run_a.iter().zip(&run_b) {
                            assert_eq!(key3(a), key3(b), "pop_next ties diverged");
                        }
                        now = a.time.seconds();
                        live -= 1 + run_a.len();
                    }
                }
            }
        }
        loop {
            match (pooled.pop_min(), plain.pop_min()) {
                (Some(a), Some(b)) => assert_eq!(key3(&a), key3(&b), "drain diverged"),
                (None, None) => break,
                _ => panic!("pooled and plain drained different event counts"),
            }
        }
        assert_eq!(
            pooled.slot_high_water() as usize,
            peak_live,
            "free-list recycling must bound the slab at peak concurrency"
        );
    }

    #[test]
    fn pooled_recycling_keeps_tie_order_all_queues() {
        use crate::queue::{CalendarQueue, LadderQueue, SortedListQueue};
        pooled_tracks_unpooled(
            BinaryHeapQueue::<u32>::new(),
            QueueKind::BinaryHeap.build::<u64>(),
            0xA11,
        );
        pooled_tracks_unpooled(
            SortedListQueue::<u32>::new(),
            QueueKind::SortedList.build::<u64>(),
            0xA12,
        );
        pooled_tracks_unpooled(
            CalendarQueue::<u32>::new(),
            QueueKind::Calendar.build::<u64>(),
            0xA13,
        );
        pooled_tracks_unpooled(
            LadderQueue::<u32>::new(),
            QueueKind::Ladder.build::<u64>(),
            0xA14,
        );
    }

    #[test]
    fn non_copy_payloads_survive_pooling() {
        let mut q = PooledQueue::new(BinaryHeapQueue::<u32>::new());
        for s in 0..50u64 {
            q.insert(ScheduledEvent::new(
                SimTime::new((s % 5) as f64),
                s,
                format!("payload-{s}"),
            ));
        }
        let mut seen = Vec::new();
        while let Some(ev) = q.pop_min() {
            seen.push(ev.event);
        }
        assert_eq!(seen.len(), 50);
        // (time, seq) order: grouped by time mod 5, seq ascending inside
        assert_eq!(seen[0], "payload-0");
        assert_eq!(seen[1], "payload-5");
        assert_eq!(seen[49], "payload-49");
    }
}
