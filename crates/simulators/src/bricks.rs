//! Bricks — the central-model scheduling simulator.
//!
//! "Bricks was among the first simulation projects developed to
//! investigate different resource scheduling issues … Bricks uses a model
//! which the authors call the 'central model'. In this simulation model it
//! is assumed that all the jobs are processed at a single site." (§4)
//!
//! The facade builds a star of client sites around one central server;
//! clients generate jobs, the scheduler is pinned to the server, and the
//! server processes time-shared (Bricks models servers as queueing
//! systems). The later replica/disk extension of Bricks is reachable by
//! adding `initial_files`.

use crate::taxonomy::*;
use lsds_core::SimTime;
use lsds_grid::cpu::{Discipline, Sharing};
use lsds_grid::model::{GridConfig, GridModel, GridReport};
use lsds_grid::organization::{central_grid, SiteSpec};
use lsds_grid::scheduler::FixedSite;
use lsds_grid::{Activity, SiteId};
use lsds_stats::{Dist, SimRng};

/// Bricks scenario parameters.
pub struct Bricks {
    /// Number of client sites submitting jobs.
    pub n_clients: usize,
    /// Server cores.
    pub server_cores: usize,
    /// Server per-core speed.
    pub server_speed: f64,
    /// Client→server link bandwidth (bytes/s).
    pub client_bw: f64,
    /// Link latency (s).
    pub latency: f64,
    /// Mean job inter-arrival time per client.
    pub mean_interarrival: f64,
    /// Job work distribution (reference-core seconds).
    pub work: Dist,
    /// Jobs per client.
    pub jobs_per_client: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Bricks {
    fn default() -> Self {
        Bricks {
            n_clients: 8,
            server_cores: 16,
            server_speed: 1.0,
            client_bw: lsds_net::mbps(100.0),
            latency: 0.02,
            mean_interarrival: 4.0,
            work: Dist::exp_mean(30.0),
            jobs_per_client: 50,
            seed: 1,
        }
    }
}

impl Bricks {
    /// Runs the scenario to completion (bounded by `horizon`).
    pub fn run(self, horizon: f64) -> GridReport {
        let grid = central_grid(
            self.n_clients,
            SiteSpec {
                cores: self.server_cores,
                speed: self.server_speed,
                sharing: Sharing::Time,
                discipline: Discipline::Fifo,
                disk: 100.0e12,
                price: 1.0,
            },
            1.0e12,
            self.client_bw,
            self.latency,
        );
        let master = SimRng::new(self.seed);
        let activities = (0..self.n_clients)
            .map(|i| {
                Activity::compute(
                    i as u32,
                    self.mean_interarrival,
                    self.work.clone(),
                    master.fork(i as u64 + 1),
                )
                .with_limit(self.jobs_per_client)
            })
            .collect();
        let cfg = GridConfig {
            grid,
            policy: Box::new(FixedSite(SiteId(0))),
            replication: lsds_grid::ReplicationPolicy::None,
            activities,
            production: None,
            agent: None,
            eligible: Some(
                std::iter::once(true)
                    .chain(std::iter::repeat_n(false, self.n_clients))
                    .collect(),
            ),
            initial_files: vec![],
            seed: self.seed,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(horizon));
        sim.model().report()
    }
}

impl Classified for Bricks {
    fn classification() -> Classification {
        Classification {
            name: "Bricks",
            scope: Scope::Scheduling,
            components: Components {
                hosts: true,
                network: true,
                middleware: true,
                applications: true,
            },
            behavior: Behavior::Probabilistic,
            mechanics: Mechanics::DiscreteEvent,
            advance: DesAdvance::EventDriven,
            execution: Execution::Centralized,
            // the paper's named exception to runtime-definable components
            dynamic_components: false,
            model_spec: ModelSpec::Language,
            input: InputData::Generators,
            visual_design: false,
            visual_output: false,
            validation: Validation::Testbed,
            resource_model: ResourceModel::Central,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_run_at_the_server() {
        let rep = Bricks {
            n_clients: 4,
            jobs_per_client: 10,
            ..Bricks::default()
        }
        .run(1.0e6);
        assert_eq!(rep.records.len(), 40);
        assert!(rep.records.iter().all(|r| r.site == SiteId(0)));
        assert_eq!(rep.rejected, 0);
    }

    #[test]
    fn server_speed_scales_response_time() {
        let slow = Bricks {
            server_speed: 1.0,
            seed: 3,
            ..Bricks::default()
        }
        .run(1.0e6);
        let fast = Bricks {
            server_speed: 4.0,
            seed: 3,
            ..Bricks::default()
        }
        .run(1.0e6);
        assert!(fast.mean_makespan < slow.mean_makespan);
    }

    #[test]
    fn classification_matches_paper() {
        let c = Bricks::classification();
        assert_eq!(c.resource_model, ResourceModel::Central);
        assert!(!c.dynamic_components);
        assert_eq!(c.validation, Validation::Testbed);
    }
}
