//! MONARC 2 — process-oriented simulation of the tiered LHC computing
//! model, and the T0/T1 replication study of Legrand et al. (2005).
//!
//! "Its simulation model is based on the characteristics of the LHC
//! physics experiments, and is organized in the form of a hierarchy of
//! different sites that are grouped into levels called tiers … MONARC 2
//! was already used to evaluate the specific behavior of the LHC
//! experiments … The obtained results indicated the role of using a data
//! replication agent for the intelligent transferring of the produced
//! data. The obtained results also showed that the existing capacity of
//! 2.5 Gbps was not sufficient and, in fact, not far afterwards the link
//! was upgraded to a current 30 Gbps." (§4–§5)
//!
//! The facade models the tier architecture with a **shared T0 uplink**
//! (the 2.5 Gbps of the study): T0 — uplink — gateway — fat links — T1s.
//! Production registers datasets at T0; with the agent enabled each
//! dataset is shipped to every T1 immediately. [`Monarc::run`] reports
//! whether shipping kept pace with production (the paper's
//! sufficient/insufficient verdict) and the dataset availability lag at
//! the T1s. Experiment E6 sweeps the uplink from 0.6 to 30 Gbps.

use crate::taxonomy::*;
use lsds_core::SimTime;
use lsds_grid::cpu::{CpuFarm, Discipline, Sharing};
use lsds_grid::model::{GridConfig, GridModel, GridReport, Production};
use lsds_grid::organization::{BuiltGrid, Organization};
use lsds_grid::replication::FileId;
use lsds_grid::scheduler::LeastLoaded;
use lsds_grid::site::Site;
use lsds_grid::storage::{DbServer, MassStorage, StorageElement};
use lsds_grid::{Activity, FaultSchedule, ReplicationPolicy, SiteId};
use lsds_net::{gbps, LinkId, NodeKind, Topology};
use lsds_stats::{Dist, SimRng, Summary};

/// MONARC LHC scenario parameters.
pub struct Monarc {
    /// Number of tier-1 regional centers.
    pub n_t1: usize,
    /// Shared T0 egress capacity in Gbps (the study's 2.5 → 30 axis).
    pub uplink_gbps: f64,
    /// Gateway→T1 link capacity in Gbps (fat, not the bottleneck).
    pub t1_link_gbps: f64,
    /// Dataset size in GB.
    pub dataset_gb: f64,
    /// Seconds between produced datasets.
    pub production_interval: f64,
    /// Datasets to produce.
    pub datasets: u64,
    /// Ship production to T1s with the replication agent?
    pub agent: bool,
    /// Analysis jobs per T1 over the pre-produced dataset window
    /// (0 = pure transfer study).
    pub analysis_jobs: u64,
    /// Pre-produced datasets available for analysis.
    pub initial_datasets: usize,
    /// Cores per T1 farm.
    pub t1_cores: usize,
    /// Keep the pre-produced datasets on T0's tape silo instead of disk:
    /// the first access of each pays a mass-storage recall (MONARC's
    /// "mass storage units").
    pub archive_initial: bool,
    /// Scheduled outages of the shared T0 uplink, as `(start, duration)`
    /// seconds: both directions of the duplex go down together. Transfers
    /// caught on the link abort and ride the grid's retry/backoff path —
    /// the failure-resilience side of the T0→T1 replication study.
    pub uplink_outages: Vec<(f64, f64)>,
    /// Seed.
    pub seed: u64,
}

impl Default for Monarc {
    fn default() -> Self {
        Monarc {
            n_t1: 5,
            uplink_gbps: 2.5,
            t1_link_gbps: 10.0,
            dataset_gb: 100.0,
            // 100 GB every 320 s ≈ 2.5 Gbps of raw production; shipping
            // to 5 T1s needs 5× that — the study's regime
            production_interval: 320.0,
            datasets: 50,
            agent: true,
            analysis_jobs: 0,
            initial_datasets: 20,
            t1_cores: 32,
            archive_initial: false,
            uplink_outages: Vec::new(),
            seed: 1,
        }
    }
}

/// Outcome of a MONARC LHC run.
#[derive(Debug, Clone)]
pub struct MonarcReport {
    /// Datasets produced.
    pub produced: u64,
    /// Agent shipments completed (`datasets × n_t1` when fully drained).
    pub shipped: u64,
    /// Time the last dataset rolled off production.
    pub last_production: f64,
    /// Time the last shipment completed (0 if none).
    pub last_shipment: f64,
    /// Mean production→T1-availability lag over completed shipments.
    pub mean_availability_lag: f64,
    /// Maximum availability lag.
    pub max_availability_lag: f64,
    /// Whether shipping kept pace: the backlog drained and the lag stayed
    /// bounded instead of growing with every dataset.
    pub sustainable: bool,
    /// Offered T0 egress demand in Gbps (`production rate × n_t1`).
    pub offered_gbps: f64,
    /// The underlying grid report (job statistics when analysis ran).
    pub grid: GridReport,
}

impl Monarc {
    fn build_grid(&self) -> BuiltGrid {
        let mut topo = Topology::new();
        let t0 = topo.add_node(NodeKind::Host, "T0");
        let gw = topo.add_node(NodeKind::Router, "T0-gateway");
        topo.add_duplex(t0, gw, gbps(self.uplink_gbps), 0.001);
        let mut sites = vec![Site::new(
            SiteId(0),
            "T0",
            0,
            t0,
            // T0 is a production/storage site, not an analysis farm
            CpuFarm::new(1, 1e-6, Sharing::Space, Discipline::Fifo),
            StorageElement::new(1.0e16),
            f64::INFINITY,
        )
        // the regional center's "database servers and mass storage units"
        .with_tape(MassStorage::new(4, 45.0, 400.0e6))
        .with_db(DbServer::new(8, 0.2))];
        let mut parents = vec![None];
        for i in 0..self.n_t1 {
            let node = topo.add_node(NodeKind::Host, format!("T1-{i}"));
            topo.add_duplex(gw, node, gbps(self.t1_link_gbps), 0.02);
            sites.push(Site::new(
                SiteId(i + 1),
                format!("T1-{i}"),
                1,
                node,
                CpuFarm::new(self.t1_cores, 1.0, Sharing::Space, Discipline::Fifo),
                StorageElement::new(1.0e15),
                1.0,
            ));
            parents.push(Some(SiteId(0)));
        }
        BuiltGrid {
            sites,
            topology: topo,
            organization: Organization::Tiered,
            parents,
        }
    }

    /// Runs the scenario until `horizon`.
    pub fn run(self, horizon: f64) -> MonarcReport {
        let mut sim = self.prepare();
        sim.run_until(SimTime::new(horizon));
        self.summarize(sim.model())
    }

    /// Runs the scenario until `horizon` with causal event tracing.
    ///
    /// Identical to [`Monarc::run`] — the tracer only observes, so the
    /// report is bit-identical — but also returns the span trace for
    /// profiling, critical-path analysis, and Chrome trace export.
    pub fn run_traced(
        self,
        horizon: f64,
        cfg: lsds_obs::TraceConfig,
    ) -> (MonarcReport, lsds_obs::SpanTrace) {
        let mut sim = self.prepare().with_tracer(lsds_obs::RingTracer::new(cfg));
        sim.run_until(SimTime::new(horizon));
        let report = self.summarize(sim.model());
        (report, sim.into_tracer().finish())
    }

    /// Builds the configured grid engine, ready to run.
    fn prepare(&self) -> lsds_core::EventDriven<GridModel> {
        let grid = self.build_grid();
        let master = SimRng::new(self.seed);
        let initial_files: Vec<(f64, SiteId)> = if self.archive_initial {
            Vec::new() // registered on tape below instead
        } else {
            (0..self.initial_datasets)
                .map(|_| (self.dataset_gb * 1.0e9, SiteId(0)))
                .collect()
        };
        let activities: Vec<Activity> = if self.analysis_jobs > 0 {
            (0..self.n_t1)
                .map(|i| {
                    Activity::analysis(
                        i as u32,
                        60.0,
                        Dist::exp_mean(600.0),
                        1,
                        self.initial_datasets,
                        0.8,
                        master.fork(i as u64 + 10),
                    )
                    .with_limit(self.analysis_jobs)
                })
                .collect()
        } else {
            Vec::new()
        };
        let cfg = GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            // without the agent, analysis pulls datasets on demand
            replication: ReplicationPolicy::PullLru,
            activities,
            production: Some(Production {
                site: SiteId(0),
                interarrival: Dist::constant(self.production_interval),
                size: Dist::constant(self.dataset_gb * 1.0e9),
                limit: Some(self.datasets),
            }),
            agent: if self.agent {
                Some(self.n_t1 * 2)
            } else {
                None
            },
            eligible: None,
            initial_files,
            seed: self.seed,
        };
        let mut sim = GridModel::build(cfg);
        if !self.uplink_outages.is_empty() {
            // the T0↔gateway duplex is the first pair added: links 0 and 1
            let mut faults = FaultSchedule::new();
            for &(at, duration) in &self.uplink_outages {
                faults.link_outage(LinkId(0), at, duration);
                faults.link_outage(LinkId(1), at, duration);
            }
            sim.model_mut().set_faults(faults);
        }
        if self.archive_initial {
            for _ in 0..self.initial_datasets {
                sim.model_mut()
                    .archive_file(self.dataset_gb * 1.0e9, SiteId(0));
            }
        }
        if self.agent {
            // the agent's steady-state effect on the analysis window: the
            // pre-produced datasets were already shipped to every T1
            for f in 0..self.initial_datasets {
                for t1 in 1..=self.n_t1 {
                    sim.model_mut()
                        .prestage_replica(FileId(f as u64), SiteId(t1));
                }
            }
        }
        sim
    }

    /// Distills the post-run model state into the report.
    fn summarize(&self, m: &GridModel) -> MonarcReport {
        let produced_at: std::collections::HashMap<u64, f64> =
            m.produced_log().iter().copied().collect();
        let mut lag = Summary::new();
        let mut last_shipment = 0.0f64;
        for &(file, _dst, finished) in m.agent_log() {
            let at = produced_at.get(&file).copied().unwrap_or(0.0);
            lag.add(finished - at);
            last_shipment = last_shipment.max(finished);
        }
        let last_production = m.produced_log().last().map(|&(_, t)| t).unwrap_or(0.0);
        let report = m.report();
        let expected_shipments = self.datasets * self.n_t1 as u64;
        // Sustainable iff every shipment completed within the production
        // window plus a small drain allowance (two dataset periods), and
        // the worst lag did not balloon past the window itself.
        let drain_allowance = 2.0 * self.production_interval;
        let sustainable = self.agent
            && report.agent_shipped == expected_shipments
            && last_shipment <= last_production + drain_allowance
            && lag.max() <= 4.0 * self.production_interval;
        let offered_gbps = (self.dataset_gb * 8.0 / self.production_interval) * self.n_t1 as f64;
        MonarcReport {
            produced: report.produced,
            shipped: report.agent_shipped,
            last_production,
            last_shipment,
            mean_availability_lag: lag.mean(),
            max_availability_lag: if lag.count() > 0 { lag.max() } else { 0.0 },
            sustainable,
            offered_gbps,
            grid: report,
        }
    }
}

impl Classified for Monarc {
    fn classification() -> Classification {
        Classification {
            name: "MONARC 2",
            scope: Scope::GenericLsds,
            components: Components {
                hosts: true,
                network: true,
                middleware: true,
                applications: true,
            },
            behavior: Behavior::Both,
            mechanics: Mechanics::DiscreteEvent,
            advance: DesAdvance::EventDriven,
            // threaded "active objects" use every available processor —
            // the paper's centralized/distributed split puts it here
            execution: Execution::Distributed,
            dynamic_components: true,
            model_spec: ModelSpec::Library,
            // "MONARC 2 accepts both types of input (the monitoring data
            // format is the one produced by MonALISA)"
            input: InputData::Both,
            visual_design: true,
            visual_output: true,
            validation: Validation::Testbed,
            resource_model: ResourceModel::Tier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer_study(uplink_gbps: f64) -> MonarcReport {
        Monarc {
            uplink_gbps,
            datasets: 30,
            ..Monarc::default()
        }
        .run(1.0e6)
    }

    #[test]
    fn thirty_gbps_is_sufficient() {
        let rep = transfer_study(30.0);
        assert_eq!(rep.produced, 30);
        assert_eq!(rep.shipped, 30 * 5);
        assert!(rep.sustainable, "lag {}", rep.max_availability_lag);
    }

    #[test]
    fn two_point_five_gbps_is_not_sufficient() {
        // offered demand is ~12.5 Gbps (5 T1s × 2.5 Gbps of production):
        // the historical link cannot keep up
        let rep = transfer_study(2.5);
        assert!(
            !rep.sustainable,
            "2.5 Gbps must be insufficient (lag {})",
            rep.max_availability_lag
        );
        assert!(rep.max_availability_lag > rep.mean_availability_lag);
    }

    #[test]
    fn lag_decreases_with_bandwidth() {
        let slow = transfer_study(5.0);
        let fast = transfer_study(30.0);
        assert!(fast.mean_availability_lag < slow.mean_availability_lag);
    }

    #[test]
    fn offered_rate_computed() {
        let rep = transfer_study(30.0);
        // 100 GB / 320 s = 2.5 Gbps per copy × 5 T1s
        assert!((rep.offered_gbps - 12.5).abs() < 1e-9);
    }

    #[test]
    fn agent_prestaging_removes_stage_time() {
        let with_agent = Monarc {
            agent: true,
            analysis_jobs: 20,
            datasets: 5,
            uplink_gbps: 30.0,
            seed: 6,
            ..Monarc::default()
        }
        .run(1.0e6);
        let without = Monarc {
            agent: false,
            analysis_jobs: 20,
            datasets: 5,
            uplink_gbps: 30.0,
            seed: 6,
            ..Monarc::default()
        }
        .run(1.0e6);
        assert_eq!(with_agent.grid.records.len(), without.grid.records.len());
        assert!(
            with_agent.grid.mean_stage_time < without.grid.mean_stage_time,
            "agent {} vs no agent {}",
            with_agent.grid.mean_stage_time,
            without.grid.mean_stage_time
        );
    }

    #[test]
    fn archived_initial_datasets_pay_tape_recalls() {
        let cached = Monarc {
            agent: false,
            analysis_jobs: 15,
            datasets: 2,
            uplink_gbps: 30.0,
            archive_initial: false,
            seed: 8,
            ..Monarc::default()
        }
        .run(1.0e6);
        let archived = Monarc {
            agent: false,
            analysis_jobs: 15,
            datasets: 2,
            uplink_gbps: 30.0,
            archive_initial: true,
            seed: 8,
            ..Monarc::default()
        }
        .run(1.0e6);
        assert_eq!(cached.grid.records.len(), archived.grid.records.len());
        assert_eq!(cached.grid.tape_recalls, 0);
        assert!(archived.grid.tape_recalls > 0, "tape must be exercised");
        // the first access of an archived dataset pays the full recall:
        // 45 s mount + 100 GB / 400 MB/s = 295 s before the WAN leg
        let max_stage = archived
            .grid
            .records
            .iter()
            .map(|r| r.stage_time())
            .fold(0.0f64, f64::max);
        assert!(max_stage >= 295.0, "max stage {max_stage}");
        // (a side effect worth knowing: the drive pool serializes WAN
        // transfer starts, so *mean* staging can even drop — tape acts
        // as admission control on the shared uplink)
        // the DB sits at T0, which executes nothing; T1 placements
        // query nothing
        assert_eq!(archived.grid.db_queries, 0);
    }

    #[test]
    fn uplink_outage_delays_but_does_not_lose_shipments() {
        let clean = Monarc {
            uplink_gbps: 30.0,
            datasets: 20,
            ..Monarc::default()
        }
        .run(1.0e6);
        let faulty = Monarc {
            uplink_gbps: 30.0,
            datasets: 20,
            // a one-hour outage in the middle of the production window
            uplink_outages: vec![(1000.0, 3600.0)],
            ..Monarc::default()
        }
        .run(1.0e6);
        assert_eq!(clean.shipped, 20 * 5);
        assert_eq!(faulty.shipped, 20 * 5, "retries recover every shipment");
        assert!(
            faulty.grid.transfer_retries > 0,
            "outage must force shipment retries"
        );
        assert!(
            faulty.max_availability_lag > clean.max_availability_lag,
            "the outage must show up as availability lag: {} vs {}",
            faulty.max_availability_lag,
            clean.max_availability_lag
        );
    }

    #[test]
    fn traced_run_is_bit_identical_and_names_a_critical_path() {
        let plain = transfer_study(30.0);
        let (traced, trace) = Monarc {
            uplink_gbps: 30.0,
            datasets: 30,
            ..Monarc::default()
        }
        .run_traced(1.0e6, lsds_obs::TraceConfig::default());
        assert_eq!(plain.produced, traced.produced);
        assert_eq!(plain.shipped, traced.shipped);
        assert_eq!(plain.last_shipment, traced.last_shipment);
        assert_eq!(plain.mean_availability_lag, traced.mean_availability_lag);
        assert!(!trace.is_empty());
        let path = trace.critical_path();
        assert!(!path.steps.is_empty());
        // every span kind on the path is a named grid/net handler
        assert!(path
            .steps
            .iter()
            .all(|s| s.kind.name.starts_with("grid.") || s.kind.name.starts_with("net.")));
    }

    #[test]
    fn classification_matches_paper() {
        let c = Monarc::classification();
        assert_eq!(c.resource_model, ResourceModel::Tier);
        assert_eq!(c.input, InputData::Both);
        assert_eq!(c.execution, Execution::Distributed);
    }
}
