//! ChicagoSim — scheduling in conjunction with data location.
//!
//! "ChicagoSim … is designed to investigate scheduling strategies in
//! conjunction with data location. Its architecture includes a
//! configurable number of schedulers rather than one Resource Broker …
//! It also allows for data replication but with a 'push' model in which,
//! when a site contains a popular data file, it will replicate it to
//! remote sites … A distributed system in ChicagoSim is modeled as a
//! collection of sites. Each site has a certain number of processors of
//! equal capacity and limited storage." (§4)
//!
//! The facade wires exactly that: a flat collection of equal sites with
//! limited storage, a configurable number of independent (data-aware)
//! schedulers — one per user population — and push replication.

use crate::taxonomy::*;
use lsds_core::SimTime;
use lsds_grid::job::JobSpec;
use lsds_grid::model::{GridConfig, GridModel, GridReport};
use lsds_grid::organization::{flat_grid, SiteSpec};
use lsds_grid::scheduler::{DataAware, Placement, PlacementView, SchedulerPolicy};
use lsds_grid::{Activity, ReplicationPolicy, SiteId};
use lsds_stats::{Dist, SimRng};

/// A configurable bank of independent schedulers: job owner `u` is served
/// by broker `u mod n` ("a configurable number of schedulers rather than
/// one Resource Broker").
pub struct SchedulerBank {
    brokers: Vec<Box<dyn SchedulerPolicy>>,
}

impl SchedulerBank {
    /// Creates `n` independent data-aware schedulers.
    pub fn data_aware(n: usize) -> Self {
        assert!(n > 0);
        SchedulerBank {
            brokers: (0..n)
                .map(|_| Box::new(DataAware) as Box<dyn SchedulerPolicy>)
                .collect(),
        }
    }

    /// Number of schedulers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Whether the bank is empty (never; constructor requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }
}

impl SchedulerPolicy for SchedulerBank {
    fn name(&self) -> &'static str {
        "scheduler-bank"
    }
    fn select(&mut self, job: &JobSpec, view: &PlacementView<'_>) -> Placement {
        let idx = job.owner as usize % self.brokers.len();
        self.brokers[idx].select(job, view)
    }
}

/// ChicagoSim scenario.
pub struct ChicagoSim {
    /// Number of equal sites.
    pub n_sites: usize,
    /// Processors per site ("of equal capacity").
    pub processors: usize,
    /// Limited storage per site (bytes).
    pub storage: f64,
    /// Number of independent schedulers.
    pub n_schedulers: usize,
    /// Push popularity threshold.
    pub push_threshold: u64,
    /// Files in the initial catalog (spread round-robin over sites).
    pub n_files: usize,
    /// File size.
    pub file_size: f64,
    /// Zipf exponent of access popularity.
    pub zipf_s: f64,
    /// Jobs per scheduler population.
    pub jobs_per_user: u64,
    /// Mean inter-arrival per population.
    pub mean_interarrival: f64,
    /// Job work.
    pub work: Dist,
    /// Seed.
    pub seed: u64,
}

impl Default for ChicagoSim {
    fn default() -> Self {
        ChicagoSim {
            n_sites: 6,
            processors: 8,
            storage: 20.0e9,
            n_schedulers: 3,
            push_threshold: 4,
            n_files: 30,
            file_size: 1.0e9,
            zipf_s: 1.0,
            jobs_per_user: 60,
            mean_interarrival: 15.0,
            work: Dist::exp_mean(90.0),
            seed: 1,
        }
    }
}

impl ChicagoSim {
    /// Runs the scenario.
    pub fn run(self, horizon: f64) -> GridReport {
        let specs = vec![
            SiteSpec {
                cores: self.processors,
                speed: 1.0,
                disk: self.storage,
                ..SiteSpec::default()
            };
            self.n_sites
        ];
        let grid = flat_grid(specs, lsds_net::mbps(622.0), 0.01);
        // initial files spread round-robin over sites
        let initial_files = (0..self.n_files)
            .map(|i| (self.file_size, SiteId(i % self.n_sites)))
            .collect();
        let master = SimRng::new(self.seed);
        let activities = (0..self.n_schedulers)
            .map(|u| {
                Activity::analysis(
                    u as u32,
                    self.mean_interarrival,
                    self.work.clone(),
                    2,
                    self.n_files,
                    self.zipf_s,
                    master.fork(u as u64 + 1),
                )
                .with_limit(self.jobs_per_user)
            })
            .collect();
        let cfg = GridConfig {
            grid,
            policy: Box::new(SchedulerBank::data_aware(self.n_schedulers)),
            replication: ReplicationPolicy::Push {
                threshold: self.push_threshold,
            },
            activities,
            production: None,
            agent: None,
            eligible: None,
            initial_files,
            seed: self.seed,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(horizon));
        sim.model().report()
    }
}

impl Classified for ChicagoSim {
    fn classification() -> Classification {
        Classification {
            name: "ChicagoSim",
            scope: Scope::SchedulingAndData,
            components: Components {
                hosts: true,
                network: true,
                middleware: true,
                applications: true,
            },
            behavior: Behavior::Probabilistic,
            mechanics: Mechanics::DiscreteEvent,
            advance: DesAdvance::EventDriven,
            execution: Execution::Centralized,
            dynamic_components: true,
            // "built on top of the C-based simulation language Parsec"
            model_spec: ModelSpec::Language,
            // "ChicagoSim accepts only input data generators"
            input: InputData::Generators,
            visual_design: false,
            visual_output: false,
            validation: Validation::None,
            resource_model: ResourceModel::FlatSites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_complete_and_pushes_happen() {
        let rep = ChicagoSim {
            jobs_per_user: 40,
            ..ChicagoSim::default()
        }
        .run(1.0e6);
        assert_eq!(rep.records.len(), 3 * 40);
        assert!(rep.pushes > 0, "push replication must trigger");
    }

    #[test]
    fn data_aware_scheduling_limits_wan_traffic() {
        // random placement moves far more data than data-aware
        struct RandomRef;
        let chicago = ChicagoSim {
            seed: 7,
            ..ChicagoSim::default()
        }
        .run(1.0e6);
        let _ = RandomRef;
        // each job reads ≤ 2 files ≤ 2 GB; data-aware placement should
        // stage well under half of the worst case
        let worst = chicago.records.len() as f64 * 2.0 * 1.0e9;
        assert!(
            chicago.wan_bytes < 0.5 * worst,
            "wan {} vs worst {worst}",
            chicago.wan_bytes
        );
    }

    #[test]
    fn scheduler_bank_routes_by_owner() {
        use lsds_grid::scheduler::SiteSnapshot;
        let mut bank = SchedulerBank::data_aware(2);
        assert_eq!(bank.len(), 2);
        let sites = [SiteSnapshot {
            id: SiteId(0),
            eligible: true,
            cores: 1,
            speed: 1.0,
            running: 0,
            queued: 0,
            price: 1.0,
            tier: 0,
        }];
        let mb = [0.0];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        for owner in 0..4 {
            let job = JobSpec {
                id: lsds_grid::JobId(owner as u64),
                owner,
                work: 1.0,
                inputs: vec![],
                output_bytes: 0.0,
                submitted: SimTime::ZERO,
                deadline: None,
                budget: None,
            };
            assert_eq!(bank.select(&job, &view), Placement::Site(SiteId(0)));
        }
    }

    #[test]
    fn classification_matches_paper() {
        let c = ChicagoSim::classification();
        assert_eq!(c.scope, Scope::SchedulingAndData);
        assert_eq!(c.model_spec, ModelSpec::Language);
        assert_eq!(c.input, InputData::Generators);
    }
}
