//! OptorSim — the Data Grid replication-optimization simulator.
//!
//! "The objective of OptorSim is to investigate the stability and
//! transient behavior of replication optimization methods. OptorSim
//! adopts a Grid structure based on a simplification of the architecture
//! proposed by the EU DataGrid project … Given a Grid topology and
//! resources, a set of jobs to be executed and an optimization strategy as
//! input, OptorSim runs a number of Grid jobs on the simulated Grid. It
//! provides a set of measurements which can be used to quantify the
//! effectiveness of the optimization strategy." (§4)
//!
//! The facade builds an EU-DataGrid-like flat grid with a master storage
//! site holding the initial dataset, runs Zipf-skewed analysis jobs at the
//! compute sites, and applies one of the **pull** replication strategies.

use crate::taxonomy::*;
use lsds_core::SimTime;
use lsds_grid::model::{GridConfig, GridModel, GridReport};
use lsds_grid::organization::{flat_grid, SiteSpec};
use lsds_grid::scheduler::RoundRobin;
use lsds_grid::{Activity, ReplicationPolicy, SiteId};
use lsds_stats::{Dist, SimRng};

/// OptorSim scenario parameters.
pub struct OptorSim {
    /// Compute sites (the master storage site is added on top).
    pub n_sites: usize,
    /// Cores per compute site.
    pub cores: usize,
    /// Per-site disk capacity (bytes) — the replacement pressure knob.
    pub disk: f64,
    /// WAN bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Files in the initial catalog (all at the master site).
    pub n_files: usize,
    /// File size (bytes).
    pub file_size: f64,
    /// Zipf popularity exponent of file accesses.
    pub zipf_s: f64,
    /// Total jobs.
    pub jobs: u64,
    /// Mean inter-arrival time.
    pub mean_interarrival: f64,
    /// Files read per job.
    pub files_per_job: u32,
    /// Job CPU work.
    pub work: Dist,
    /// The replication strategy under study.
    pub strategy: ReplicationPolicy,
    /// Seed.
    pub seed: u64,
}

impl Default for OptorSim {
    fn default() -> Self {
        OptorSim {
            n_sites: 5,
            cores: 8,
            disk: 12.0e9, // deliberately tight: forces eviction decisions
            bandwidth: lsds_net::mbps(622.0), // EU DataGrid era links
            n_files: 40,
            file_size: 1.0e9,
            zipf_s: 0.9,
            jobs: 200,
            mean_interarrival: 60.0,
            files_per_job: 2,
            work: Dist::exp_mean(120.0),
            strategy: ReplicationPolicy::PullLru,
            seed: 1,
        }
    }
}

impl OptorSim {
    /// Runs the scenario; the report's `mean_makespan` and `wan_bytes`
    /// quantify the strategy's effectiveness (E7).
    pub fn run(self, horizon: f64) -> GridReport {
        // site 0 is the master storage element (no compute), 1..=n compute
        let mut specs = vec![SiteSpec {
            cores: 1,
            speed: 1e-6, // ineligible for execution by default rule
            disk: 1.0e15,
            ..SiteSpec::default()
        }];
        for _ in 0..self.n_sites {
            specs.push(SiteSpec {
                cores: self.cores,
                disk: self.disk,
                ..SiteSpec::default()
            });
        }
        let grid = flat_grid(specs, self.bandwidth, 0.01);
        let initial_files = (0..self.n_files)
            .map(|_| (self.file_size, SiteId(0)))
            .collect();
        let master = SimRng::new(self.seed);
        let cfg = GridConfig {
            grid,
            // OptorSim's focus is the optimizer, not the broker: jobs are
            // spread round-robin like its resource-broker default
            policy: Box::new(RoundRobin::default()),
            replication: self.strategy,
            activities: vec![Activity::analysis(
                0,
                self.mean_interarrival,
                self.work.clone(),
                self.files_per_job,
                self.n_files,
                self.zipf_s,
                master.fork(1),
            )
            .with_limit(self.jobs)],
            production: None,
            agent: None,
            eligible: None,
            initial_files,
            seed: self.seed,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(horizon));
        sim.model().report()
    }
}

impl Classified for OptorSim {
    fn classification() -> Classification {
        Classification {
            name: "OptorSim",
            scope: Scope::DataReplication,
            components: Components {
                hosts: true,
                network: true,
                middleware: true,
                applications: true,
            },
            behavior: Behavior::Probabilistic,
            mechanics: Mechanics::DiscreteEvent,
            advance: DesAdvance::EventDriven,
            execution: Execution::Centralized,
            dynamic_components: true,
            model_spec: ModelSpec::Library,
            input: InputData::Generators,
            visual_design: false,
            visual_output: true,
            validation: Validation::None,
            resource_model: ResourceModel::FlatSites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(strategy: ReplicationPolicy, seed: u64) -> GridReport {
        OptorSim {
            jobs: 80,
            strategy,
            seed,
            ..OptorSim::default()
        }
        .run(1.0e6)
    }

    #[test]
    fn jobs_complete_under_all_strategies() {
        for strategy in [
            ReplicationPolicy::None,
            ReplicationPolicy::PullLru,
            ReplicationPolicy::PullLfu,
            ReplicationPolicy::PullEconomic,
        ] {
            let rep = quick(strategy, 5);
            assert_eq!(rep.records.len(), 80, "{}", strategy.name());
            assert!(rep.wan_bytes > 0.0);
        }
    }

    #[test]
    fn replication_beats_no_replication() {
        let none = quick(ReplicationPolicy::None, 9);
        let lru = quick(ReplicationPolicy::PullLru, 9);
        assert!(
            lru.wan_bytes < none.wan_bytes,
            "lru {} vs none {}",
            lru.wan_bytes,
            none.wan_bytes
        );
    }

    #[test]
    fn classification_matches_paper() {
        let c = OptorSim::classification();
        assert_eq!(c.scope, Scope::DataReplication);
        assert_eq!(c.validation, Validation::None);
    }
}
