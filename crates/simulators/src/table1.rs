//! Table 1 — "Design comparison of surveyed Grid simulation projects".
//!
//! The paper's only exhibit: the six simulators classified under the
//! taxonomy. Here the table is *generated* from the models'
//! self-classifications, so the comparison and the working code cannot
//! drift apart. Experiment E1 prints it.

use crate::bricks::Bricks;
use crate::chicagosim::ChicagoSim;
use crate::gridsim::GridSim;
use crate::monarc::Monarc;
use crate::optorsim::OptorSim;
use crate::simgrid::SimGrid;
use crate::taxonomy::{Classification, Classified};
use lsds_trace::TextTable;

/// The six surveyed simulators' classifications, in the paper's order.
pub fn classifications() -> Vec<Classification> {
    vec![
        Bricks::classification(),
        OptorSim::classification(),
        SimGrid::classification(),
        GridSim::classification(),
        ChicagoSim::classification(),
        Monarc::classification(),
    ]
}

/// Renders Table 1 as an aligned text table.
pub fn table1() -> TextTable {
    let mut t = TextTable::with_columns(&[
        "simulator",
        "scope",
        "components",
        "behavior",
        "mechanics",
        "advance",
        "execution",
        "dyn. components",
        "model spec",
        "input",
        "visual design",
        "visual output",
        "validation",
        "resource model",
    ]);
    for c in classifications() {
        t.row(vec![
            c.name.to_string(),
            c.scope.label().to_string(),
            c.components.label(),
            c.behavior.label().to_string(),
            c.mechanics.label().to_string(),
            c.advance.label().to_string(),
            c.execution.label().to_string(),
            if c.dynamic_components { "yes" } else { "no" }.to_string(),
            c.model_spec.label().to_string(),
            c.input.label().to_string(),
            if c.visual_design { "yes" } else { "no" }.to_string(),
            if c.visual_output { "yes" } else { "no" }.to_string(),
            c.validation.label().to_string(),
            c.resource_model.label().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::*;

    #[test]
    fn six_simulators_in_paper_order() {
        let cs = classifications();
        let names: Vec<&str> = cs.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            vec![
                "Bricks",
                "OptorSim",
                "SimGrid",
                "GridSim",
                "ChicagoSim",
                "MONARC 2"
            ]
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let t = table1();
        assert_eq!(t.len(), 6);
        let rendered = t.render();
        assert!(rendered.contains("MONARC 2"));
        assert!(rendered.contains("tier model"));
        assert!(rendered.contains("central model"));
    }

    #[test]
    fn paper_claims_encoded() {
        let cs = classifications();
        let by_name = |n: &str| cs.iter().find(|c| c.name == n).unwrap().clone();
        // only Bricks lacks dynamically definable components
        assert!(!by_name("Bricks").dynamic_components);
        assert!(cs
            .iter()
            .filter(|c| c.name != "Bricks")
            .all(|c| c.dynamic_components));
        // "only a few simulators present validation studies (e.g. Bricks,
        // MONARC and SimGrid)"
        let validated: Vec<&str> = cs
            .iter()
            .filter(|c| c.validation != Validation::None)
            .map(|c| c.name)
            .collect();
        assert_eq!(validated, vec!["Bricks", "SimGrid", "MONARC 2"]);
        // visual design: GridSim and MONARC 2
        let visual: Vec<&str> = cs
            .iter()
            .filter(|c| c.visual_design)
            .map(|c| c.name)
            .collect();
        assert_eq!(visual, vec!["GridSim", "MONARC 2"]);
        // MONARC 2 accepts both input kinds; ChicagoSim only generators
        assert_eq!(by_name("MONARC 2").input, InputData::Both);
        assert_eq!(by_name("ChicagoSim").input, InputData::Generators);
        // all six are discrete-event simulators (the survey excludes
        // emulators)
        assert!(cs.iter().all(|c| c.mechanics == Mechanics::DiscreteEvent));
    }

    #[test]
    fn csv_export_works() {
        let csv = table1().to_csv();
        assert!(csv.lines().count() == 7);
        assert!(csv.starts_with("simulator,"));
    }
}
