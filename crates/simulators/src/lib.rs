//! `lsds-simulators` — the taxonomy and the six surveyed simulator models.
//!
//! Two halves:
//!
//! 1. [`taxonomy`] encodes every category of the paper's §3 as Rust types,
//!    and [`table1::table1`] regenerates the paper's **Table 1** ("Design
//!    comparison of surveyed Grid simulation projects") from the
//!    self-classifications of the six models.
//! 2. One module per surveyed simulator — [`bricks`], [`optorsim`],
//!    [`simgrid`], [`gridsim`], [`chicagosim`], [`monarc`] — each a
//!    faithful configuration of the `lsds-grid`/`lsds-net` substrates
//!    reproducing that design's published behavior: Bricks' central model,
//!    OptorSim's pull replication strategies, SimGrid's compile-time vs
//!    runtime scheduling, GridSim's deadline-and-budget economy,
//!    ChicagoSim's data-aware schedulers with push replication, and
//!    MONARC 2's tiered LHC production with a replication agent (the
//!    T0/T1 study of experiment E6).
//!
//! The paper compares *designs*, not binaries; implementing the designs on
//! one engine isolates exactly the axes Table 1 tabulates (see DESIGN.md).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bricks;
pub mod chicagosim;
pub mod gridsim;
pub mod monarc;
pub mod optorsim;
pub mod simgrid;
pub mod table1;
pub mod taxonomy;

pub use table1::table1;
pub use taxonomy::{Classification, Classified};
