//! GridSim — computational-economy resource brokering.
//!
//! "GridSim is a simulator developed by researchers from the Gridbus
//! project to investigate effective resource allocation techniques based
//! on computational economy … GridSim is mainly used to study cost-time
//! optimization algorithms for scheduling task farming applications on
//! heterogeneous Grids, considering economy based distributed resource
//! management, dealing with deadline and budget constraints." (§4)
//!
//! The facade runs a task farm over heterogeneous *priced* resources under
//! the deadline-and-budget-constrained broker, optimizing either cost or
//! time (experiment E9 sweeps the constraints).

use crate::taxonomy::*;
use lsds_core::SimTime;
use lsds_grid::cpu::{Discipline, Sharing};
use lsds_grid::model::{GridConfig, GridModel, GridReport};
use lsds_grid::organization::{flat_grid, SiteSpec};
use lsds_grid::scheduler::{Economy, EconomyGoal};
use lsds_grid::{Activity, ReplicationPolicy};
use lsds_stats::{Dist, SimRng};

/// One priced resource class.
#[derive(Debug, Clone, Copy)]
pub struct Resource {
    /// Cores.
    pub cores: usize,
    /// Per-core speed.
    pub speed: f64,
    /// Price per reference-CPU-second.
    pub price: f64,
}

/// GridSim task-farm scenario.
pub struct GridSim {
    /// The heterogeneous resource pool (typically: cheap/slow through
    /// expensive/fast).
    pub resources: Vec<Resource>,
    /// What the broker optimizes.
    pub goal: EconomyGoal,
    /// Tasks in the farm.
    pub tasks: u64,
    /// Mean inter-arrival time.
    pub mean_interarrival: f64,
    /// Task work distribution.
    pub work: Dist,
    /// Deadline factor (deadline = factor × work).
    pub deadline_factor: f64,
    /// Budget factor (budget = factor × work).
    pub budget_factor: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for GridSim {
    fn default() -> Self {
        GridSim {
            resources: vec![
                Resource {
                    cores: 8,
                    speed: 1.0,
                    price: 1.0,
                },
                Resource {
                    cores: 8,
                    speed: 2.0,
                    price: 3.0,
                },
                Resource {
                    cores: 4,
                    speed: 4.0,
                    price: 8.0,
                },
            ],
            goal: EconomyGoal::CostMin,
            tasks: 200,
            mean_interarrival: 2.0,
            work: Dist::exp_mean(60.0),
            deadline_factor: 4.0,
            budget_factor: 4.0,
            seed: 1,
        }
    }
}

impl GridSim {
    /// Runs the farm; the report carries total cost, deadline hit rate
    /// and rejections.
    pub fn run(self, horizon: f64) -> GridReport {
        let specs = self
            .resources
            .iter()
            .map(|r| SiteSpec {
                cores: r.cores,
                speed: r.speed,
                sharing: Sharing::Space,
                discipline: Discipline::Fifo,
                disk: 10.0e12,
                price: r.price,
            })
            .collect();
        let grid = flat_grid(specs, lsds_net::mbps(1000.0), 0.005);
        let master = SimRng::new(self.seed);
        let cfg = GridConfig {
            grid,
            policy: Box::new(Economy {
                goal: self.goal,
                backlog_work_guess: self.work.mean(),
            }),
            replication: ReplicationPolicy::None,
            activities: vec![Activity::compute(
                0,
                self.mean_interarrival,
                self.work.clone(),
                master.fork(1),
            )
            .with_economy(self.deadline_factor, self.budget_factor)
            .with_limit(self.tasks)],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed: self.seed,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(horizon));
        sim.model().report()
    }
}

impl Classified for GridSim {
    fn classification() -> Classification {
        Classification {
            name: "GridSim",
            scope: Scope::Scheduling,
            components: Components {
                hosts: true,
                network: true,
                middleware: true,
                applications: true,
            },
            behavior: Behavior::Probabilistic,
            mechanics: Mechanics::DiscreteEvent,
            advance: DesAdvance::EventDriven,
            execution: Execution::Centralized,
            dynamic_components: true,
            model_spec: ModelSpec::Library,
            input: InputData::Generators,
            // "Examples of simulators providing visual design interfaces
            // are GridSim and MONARC 2"
            visual_design: true,
            visual_output: true,
            validation: Validation::None,
            resource_model: ResourceModel::FlatSites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_completes_with_loose_constraints() {
        let rep = GridSim {
            tasks: 100,
            deadline_factor: 1000.0,
            budget_factor: 1000.0,
            ..GridSim::default()
        }
        .run(1.0e6);
        assert_eq!(rep.records.len(), 100);
        assert_eq!(rep.rejected, 0);
        assert!(rep.total_cost > 0.0);
    }

    #[test]
    fn cost_optimizer_prefers_cheap_resources() {
        let rep = GridSim {
            goal: EconomyGoal::CostMin,
            tasks: 60,
            deadline_factor: 1000.0,
            budget_factor: 1000.0,
            seed: 2,
            ..GridSim::default()
        }
        .run(1.0e6);
        // everything fits on the cheapest site when deadlines are loose
        let cheap_share =
            rep.records.iter().filter(|r| r.site.0 == 0).count() as f64 / rep.records.len() as f64;
        assert!(cheap_share > 0.9, "cheap share {cheap_share}");
    }

    #[test]
    fn time_optimizer_pays_more_but_finishes_faster() {
        let base = GridSim {
            seed: 3,
            tasks: 150,
            mean_interarrival: 1.0,
            ..GridSim::default()
        };
        let cost_run = GridSim {
            goal: EconomyGoal::CostMin,
            resources: base.resources.clone(),
            ..GridSim {
                seed: 3,
                tasks: 150,
                mean_interarrival: 1.0,
                ..GridSim::default()
            }
        }
        .run(1.0e6);
        let time_run = GridSim {
            goal: EconomyGoal::TimeMin,
            ..GridSim {
                seed: 3,
                tasks: 150,
                mean_interarrival: 1.0,
                ..GridSim::default()
            }
        }
        .run(1.0e6);
        assert!(
            time_run.total_cost > cost_run.total_cost,
            "time {} vs cost {}",
            time_run.total_cost,
            cost_run.total_cost
        );
        assert!(
            time_run.mean_makespan < cost_run.mean_makespan,
            "time {} vs cost {}",
            time_run.mean_makespan,
            cost_run.mean_makespan
        );
    }

    #[test]
    fn tight_budget_causes_rejections() {
        let rep = GridSim {
            budget_factor: 0.01, // cannot afford any resource
            tasks: 50,
            seed: 4,
            ..GridSim::default()
        }
        .run(1.0e6);
        assert_eq!(rep.rejected, 50);
    }

    #[test]
    fn deadlines_reported() {
        let rep = GridSim {
            deadline_factor: 2.0,
            tasks: 100,
            mean_interarrival: 0.5, // heavy load: some deadlines at risk
            seed: 5,
            ..GridSim::default()
        }
        .run(1.0e6);
        assert!(rep.deadline_hit_rate > 0.0 && rep.deadline_hit_rate <= 1.0);
    }

    #[test]
    fn classification_matches_paper() {
        let c = GridSim::classification();
        assert!(c.visual_design, "GridSim has a visual design interface");
        assert_eq!(c.scope, Scope::Scheduling);
    }
}
