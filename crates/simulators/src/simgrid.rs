//! SimGrid — the application-scheduling toolkit.
//!
//! "SimGrid is a simulation toolkit that provides core functionalities for
//! the evaluation of scheduling algorithms in distributed applications in
//! a heterogeneous, computational distributed environment … SimGrid can be
//! used to simulate compile time and running scheduling algorithms. In the
//! first category, all scheduling decisions are taken before the
//! execution. In the second category some decision are taken during the
//! execution." (§4)
//!
//! The facade schedules a bag of independent tasks on heterogeneous hosts
//! in both modes:
//!
//! * **compile-time** — a static min-completion-time (LPT) schedule is
//!   computed up front; the simulation then executes it. Because the
//!   schedule's finish times are analytically computable, this reproduces
//!   SimGrid's original validation: "comparing the results of the
//!   simulator with the ones obtained analytically on a mathematically
//!   tractable scheduling problem" (Casanova 2001) — experiment E5.
//! * **runtime** — agent-style self-scheduling: hosts pull the next task
//!   when they free up.

use crate::taxonomy::*;
use lsds_core::{Ctx, EventDriven, Model, SimTime};
use std::collections::VecDeque;

/// Scheduling mode (§4's compile-time vs running algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// All decisions before execution (static LPT/min-completion-time).
    CompileTime,
    /// Decisions during execution (work-queue self-scheduling).
    Runtime,
}

/// A bag-of-tasks scheduling scenario on heterogeneous hosts.
#[derive(Debug, Clone)]
pub struct SimGrid {
    /// Host speeds (work units per second).
    pub host_speeds: Vec<f64>,
    /// Task works (work units).
    pub task_works: Vec<f64>,
    /// Scheduling mode.
    pub mode: SchedulingMode,
}

/// Outcome of a SimGrid run.
#[derive(Debug, Clone)]
pub struct SimGridReport {
    /// Simulated makespan.
    pub makespan: f64,
    /// Host each task ran on.
    pub assignment: Vec<usize>,
    /// Finish time per host.
    pub host_finish: Vec<f64>,
}

impl SimGrid {
    /// Validates inputs.
    pub fn new(host_speeds: Vec<f64>, task_works: Vec<f64>, mode: SchedulingMode) -> Self {
        assert!(!host_speeds.is_empty() && !task_works.is_empty());
        assert!(host_speeds.iter().all(|&s| s > 0.0));
        assert!(task_works.iter().all(|&w| w > 0.0));
        SimGrid {
            host_speeds,
            task_works,
            mode,
        }
    }

    /// The classical lower bound on any schedule's makespan:
    /// `max(Σw / Σs, max_i w_i / s_max)`.
    pub fn analytic_lower_bound(&self) -> f64 {
        let total_w: f64 = self.task_works.iter().sum();
        let total_s: f64 = self.host_speeds.iter().sum();
        let s_max = self.host_speeds.iter().cloned().fold(0.0, f64::max);
        let w_max = self.task_works.iter().cloned().fold(0.0, f64::max);
        (total_w / total_s).max(w_max / s_max)
    }

    /// Computes the static LPT / min-completion-time schedule and its
    /// analytic makespan — no simulation involved. This is the tractable
    /// reference for E5.
    pub fn static_schedule(&self) -> (Vec<usize>, f64) {
        let mut order: Vec<usize> = (0..self.task_works.len()).collect();
        order.sort_by(|&a, &b| {
            self.task_works[b]
                .total_cmp(&self.task_works[a])
                .then(a.cmp(&b))
        });
        let mut finish = vec![0.0f64; self.host_speeds.len()];
        let mut assignment = vec![0usize; self.task_works.len()];
        for &t in &order {
            // host minimizing this task's completion time
            let (best, _) = finish
                .iter()
                .enumerate()
                .map(|(h, &f)| (h, f + self.task_works[t] / self.host_speeds[h]))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .expect("hosts non-empty");
            assignment[t] = best;
            finish[best] += self.task_works[t] / self.host_speeds[best];
        }
        let makespan = finish.iter().cloned().fold(0.0, f64::max);
        (assignment, makespan)
    }

    /// Runs the scenario on the discrete-event engine.
    pub fn run(&self) -> SimGridReport {
        match self.mode {
            SchedulingMode::CompileTime => self.run_static(),
            SchedulingMode::Runtime => self.run_dynamic(),
        }
    }

    fn run_static(&self) -> SimGridReport {
        let (assignment, _) = self.static_schedule();
        // queues per host in task order
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.host_speeds.len()];
        for (t, &h) in assignment.iter().enumerate() {
            queues[h].push_back(t);
        }
        let report = run_model(
            self.host_speeds.clone(),
            self.task_works.clone(),
            Dispatch::Static(queues),
        );
        SimGridReport {
            assignment,
            ..report
        }
    }

    fn run_dynamic(&self) -> SimGridReport {
        run_model(
            self.host_speeds.clone(),
            self.task_works.clone(),
            Dispatch::WorkQueue,
        )
    }
}

enum Dispatch {
    /// Pre-assigned per-host task queues.
    Static(Vec<VecDeque<usize>>),
    /// Global FIFO bag; hosts pull on completion.
    WorkQueue,
}

struct BagModel {
    speeds: Vec<f64>,
    works: Vec<f64>,
    dispatch: Dispatch,
    next_global: usize,
    assignment: Vec<usize>,
    host_finish: Vec<f64>,
    remaining: usize,
}

#[derive(Clone, Copy)]
enum Ev {
    Start,
    Done { host: usize, task: usize },
}

impl BagModel {
    fn start_task(&mut self, host: usize, task: usize, ctx: &mut Ctx<'_, Ev>) {
        self.assignment[task] = host;
        let dt = self.works[task] / self.speeds[host];
        ctx.schedule_in(dt, Ev::Done { host, task });
    }

    fn next_for(&mut self, host: usize) -> Option<usize> {
        match &mut self.dispatch {
            Dispatch::Static(queues) => queues[host].pop_front(),
            Dispatch::WorkQueue => {
                if self.next_global < self.works.len() {
                    let t = self.next_global;
                    self.next_global += 1;
                    Some(t)
                } else {
                    None
                }
            }
        }
    }
}

impl Model for BagModel {
    type Event = Ev;
    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::Start => {
                for host in 0..self.speeds.len() {
                    if let Some(task) = self.next_for(host) {
                        self.start_task(host, task, ctx);
                    }
                }
            }
            Ev::Done { host, task } => {
                let _ = task;
                self.host_finish[host] = ctx.now().seconds();
                self.remaining -= 1;
                if let Some(next) = self.next_for(host) {
                    self.start_task(host, next, ctx);
                }
            }
        }
    }
}

fn run_model(speeds: Vec<f64>, works: Vec<f64>, dispatch: Dispatch) -> SimGridReport {
    let n_tasks = works.len();
    let n_hosts = speeds.len();
    let model = BagModel {
        speeds,
        works,
        dispatch,
        next_global: 0,
        assignment: vec![usize::MAX; n_tasks],
        host_finish: vec![0.0; n_hosts],
        remaining: n_tasks,
    };
    let mut sim = EventDriven::new(model);
    sim.schedule(SimTime::ZERO, Ev::Start);
    let stats = sim.run();
    let m = sim.into_model();
    assert_eq!(m.remaining, 0, "tasks left unscheduled");
    SimGridReport {
        makespan: stats.end_time.seconds(),
        assignment: m.assignment,
        host_finish: m.host_finish,
    }
}

impl Classified for SimGrid {
    fn classification() -> Classification {
        Classification {
            name: "SimGrid",
            scope: Scope::Scheduling,
            // "SimGrid does not provide any of the system support
            // facilities as discussed in the taxonomy" — it abstracts
            // hosts/links for scheduling, with no application layer
            components: Components {
                hosts: true,
                network: true,
                middleware: true,
                applications: false,
            },
            behavior: Behavior::Both,
            mechanics: Mechanics::DiscreteEvent,
            advance: DesAdvance::EventDriven,
            execution: Execution::Centralized,
            dynamic_components: true,
            model_spec: ModelSpec::Library,
            input: InputData::Both,
            visual_design: false,
            visual_output: false,
            validation: Validation::Mathematical,
            resource_model: ResourceModel::FlatSites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(mode: SchedulingMode) -> SimGrid {
        SimGrid::new(
            vec![1.0, 2.0, 4.0],
            vec![10.0, 7.0, 7.0, 4.0, 4.0, 4.0, 2.0, 1.0],
            mode,
        )
    }

    #[test]
    fn static_simulation_matches_analytic_schedule() {
        // the Casanova-style validation: simulated makespan must equal
        // the analytically computed one exactly
        let sg = scenario(SchedulingMode::CompileTime);
        let (_, analytic) = sg.static_schedule();
        let report = sg.run();
        assert!(
            (report.makespan - analytic).abs() < 1e-9,
            "simulated {} vs analytic {analytic}",
            report.makespan
        );
    }

    #[test]
    fn makespans_respect_lower_bound() {
        for mode in [SchedulingMode::CompileTime, SchedulingMode::Runtime] {
            let sg = scenario(mode);
            let lb = sg.analytic_lower_bound();
            let report = sg.run();
            assert!(
                report.makespan >= lb - 1e-9,
                "{mode:?}: {} < lb {lb}",
                report.makespan
            );
            // greedy bags stay within the classical 2× factor
            assert!(report.makespan <= 2.0 * lb + 1e-9, "{mode:?}");
        }
    }

    #[test]
    fn single_host_makespan_is_total_over_speed() {
        let sg = SimGrid::new(vec![2.0], vec![4.0, 6.0, 10.0], SchedulingMode::Runtime);
        let report = sg.run();
        assert!((report.makespan - 10.0).abs() < 1e-12);
    }

    #[test]
    fn faster_host_takes_more_tasks_statically() {
        let sg = scenario(SchedulingMode::CompileTime);
        let report = sg.run();
        let counts = |h: usize| report.assignment.iter().filter(|&&a| a == h).count();
        assert!(
            counts(2) >= counts(0),
            "speed-4 host takes at least as many as speed-1"
        );
    }

    #[test]
    fn assignment_is_complete() {
        for mode in [SchedulingMode::CompileTime, SchedulingMode::Runtime] {
            let report = scenario(mode).run();
            assert!(report.assignment.iter().all(|&a| a < 3));
        }
    }

    #[test]
    fn deterministic() {
        let a = scenario(SchedulingMode::Runtime).run();
        let b = scenario(SchedulingMode::Runtime).run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn classification_matches_paper() {
        let c = SimGrid::classification();
        assert_eq!(c.validation, Validation::Mathematical);
        assert!(!c.components.applications);
    }
}
