//! The paper's taxonomy (§3) as types.
//!
//! Every category the paper proposes for classifying LSDS simulators is an
//! enum here; a simulator model self-describes by returning a
//! [`Classification`]. The categories follow §3 exactly: simulation model
//! (scope, supported components, behavior, time base) and implementation
//! (engine mechanics, DES advance, execution, model specification, input
//! data, user interface, output analysis, validation).

/// The uppermost purpose a simulator was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Resource/job scheduling studies.
    Scheduling,
    /// Data replication/optimization studies.
    DataReplication,
    /// Data transport technologies.
    DataTransport,
    /// Scheduling combined with data location.
    SchedulingAndData,
    /// Generic large scale distributed systems.
    GenericLsds,
}

impl Scope {
    /// Short label for the table.
    pub fn label(self) -> &'static str {
        match self {
            Scope::Scheduling => "scheduling",
            Scope::DataReplication => "data replication",
            Scope::DataTransport => "data transport",
            Scope::SchedulingAndData => "scheduling + data",
            Scope::GenericLsds => "generic LSDS",
        }
    }
}

/// Which of the four distributed-system layers the model covers (§3:
/// "there are four types of components: hosts, network, middleware and
/// user applications").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Components {
    /// Computing/storage hosts.
    pub hosts: bool,
    /// Network elements and protocols.
    pub network: bool,
    /// Schedulers and other middleware.
    pub middleware: bool,
    /// User applications / activities.
    pub applications: bool,
}

impl Components {
    /// e.g. `"H+N+M+A"`.
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.hosts {
            parts.push("H");
        }
        if self.network {
            parts.push("N");
        }
        if self.middleware {
            parts.push("M");
        }
        if self.applications {
            parts.push("A");
        }
        parts.join("+")
    }
}

/// Deterministic vs probabilistic behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// "A deterministic simulation has no random events occurring."
    Deterministic,
    /// "A probabilistic simulation has random events occurring."
    Probabilistic,
    /// Supports both, by configuration.
    Both,
}

impl Behavior {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Behavior::Deterministic => "deterministic",
            Behavior::Probabilistic => "probabilistic",
            Behavior::Both => "both",
        }
    }
}

/// Engine mechanics: continuous, discrete-event, or hybrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanics {
    /// State changes continuously (emulator-class).
    Continuous,
    /// State changes only at event instants.
    DiscreteEvent,
    /// Both combined.
    Hybrid,
}

impl Mechanics {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanics::Continuous => "continuous",
            Mechanics::DiscreteEvent => "discrete-event",
            Mechanics::Hybrid => "hybrid",
        }
    }
}

/// How a DES advances (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesAdvance {
    /// Replays externally collected events.
    TraceDriven,
    /// Fixed time increments.
    TimeDriven,
    /// Irregular increments to the next event.
    EventDriven,
}

impl DesAdvance {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            DesAdvance::TraceDriven => "trace-driven",
            DesAdvance::TimeDriven => "time-driven",
            DesAdvance::EventDriven => "event-driven",
        }
    }
}

/// Execution: centralized vs distributed (the paper's replacement for
/// Sulistio's serial/parallel split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// One execution unit.
    Centralized,
    /// Multiple processors, possibly dispersed.
    Distributed,
}

impl Execution {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Execution::Centralized => "centralized",
            Execution::Distributed => "distributed",
        }
    }
}

/// How models are specified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// A dedicated simulation language.
    Language,
    /// Library routines in a general-purpose language.
    Library,
    /// Visual drag-and-drop construction.
    Visual,
}

impl ModelSpec {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            ModelSpec::Language => "language",
            ModelSpec::Library => "library",
            ModelSpec::Visual => "visual",
        }
    }
}

/// Accepted input data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputData {
    /// Synthetic generators only.
    Generators,
    /// Monitored data sets only.
    Monitored,
    /// Both (e.g. MONARC 2 with MonALISA feeds).
    Both,
}

impl InputData {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            InputData::Generators => "generators",
            InputData::Monitored => "monitored",
            InputData::Both => "both",
        }
    }
}

/// Validation evidence offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validation {
    /// No published validation.
    None,
    /// Comparison against mathematical/analytical results.
    Mathematical,
    /// Comparison against a real-world testbed.
    Testbed,
}

impl Validation {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Validation::None => "none",
            Validation::Mathematical => "mathematical",
            Validation::Testbed => "testbed",
        }
    }
}

/// Resource organization (§3/§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceModel {
    /// Bricks: all jobs processed at a single site.
    Central,
    /// MONARC: hierarchical tiers.
    Tier,
    /// Flat collection of peer sites.
    FlatSites,
}

impl ResourceModel {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            ResourceModel::Central => "central model",
            ResourceModel::Tier => "tier model",
            ResourceModel::FlatSites => "flat sites",
        }
    }
}

/// A complete classification under the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Simulator name.
    pub name: &'static str,
    /// Primary scope.
    pub scope: Scope,
    /// Supported component layers.
    pub components: Components,
    /// Behavior class.
    pub behavior: Behavior,
    /// Engine mechanics.
    pub mechanics: Mechanics,
    /// DES advance style.
    pub advance: DesAdvance,
    /// Execution class.
    pub execution: Execution,
    /// Can users define new components at simulation runtime? ("the vast
    /// majority of simulation tools provide this capability, but there are
    /// also exceptions (Bricks for example)")
    pub dynamic_components: bool,
    /// Model specification style.
    pub model_spec: ModelSpec,
    /// Input data support.
    pub input: InputData,
    /// Visual model-design interface?
    pub visual_design: bool,
    /// Visual output/analysis interface?
    pub visual_output: bool,
    /// Validation evidence.
    pub validation: Validation,
    /// Resource organization.
    pub resource_model: ResourceModel,
}

/// A simulator model that can describe itself under the taxonomy.
pub trait Classified {
    /// Self-classification used to build Table 1.
    fn classification() -> Classification;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_labels() {
        let all = Components {
            hosts: true,
            network: true,
            middleware: true,
            applications: true,
        };
        assert_eq!(all.label(), "H+N+M+A");
        let some = Components {
            hosts: true,
            network: false,
            middleware: true,
            applications: false,
        };
        assert_eq!(some.label(), "H+M");
    }

    #[test]
    fn labels_are_distinct() {
        let scopes = [
            Scope::Scheduling,
            Scope::DataReplication,
            Scope::DataTransport,
            Scope::SchedulingAndData,
            Scope::GenericLsds,
        ];
        let labels: std::collections::HashSet<_> = scopes.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), scopes.len());
    }
}
