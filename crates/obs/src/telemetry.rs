//! Engine telemetry: live scheduler introspection with zero cost when off.
//!
//! The metrics [`Registry`] and the causal tracer cover
//! *model-level* observability, but the scheduler internals of the parallel
//! engines — null messages, barrier waits, rollbacks, GVT lag, steals,
//! parks, deque depths — are invisible at runtime. This module adds a third
//! hook family with the same shape as [`Tracer`](crate::Tracer):
//!
//! * [`Telemetry`] — the sink trait, with `const ENABLED` and empty
//!   `#[inline(always)]` defaults. Engines are generic over `Y: Telemetry`
//!   and guard every call site with `if Y::ENABLED`, so a run over
//!   [`NoopTelemetry`] monomorphizes to the exact uninstrumented engine.
//! * [`EngineTelemetry`] — the recording sink: named counters plus series
//!   sampled on an event-count / virtual-time cadence ([`TelemetryConfig`]).
//! * [`TelemetryReport`] — merged post-run view: per-track counters,
//!   high-water marks, and counter series exportable as Perfetto counter
//!   tracks ([`CounterTrack`]) or into a [`Registry`].
//! * [`ProgressReporter`] — a shared live stderr reporter (events/sec,
//!   virtual time vs horizon, ETA) that rides the sampling cadence.
//!
//! Telemetry only *observes*: sinks never feed back into scheduling, so a
//! telemetry-enabled run is bit-identical to a plain run by construction
//! (property-tested across all six engines in
//! `crates/parallel/tests/telemetry_properties.rs`).

use crate::registry::Registry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Scheduler-internal telemetry hooks, called by the engines.
///
/// All methods have empty inline defaults; implementors override what they
/// record. Engines must guard argument computation with `if Y::ENABLED` so
/// the disabled path stays free.
pub trait Telemetry {
    /// Whether this sink records anything. Engines skip hook argument
    /// computation entirely when this is `false`.
    const ENABLED: bool = true;

    /// Adds `by` to the counter `name` on lane `track` (an LP or worker id).
    #[inline(always)]
    fn inc(&mut self, _name: &'static str, _track: u32, _by: u64) {}

    /// Raises the high-water mark `name` on `track` to at least `v`.
    #[inline(always)]
    fn peak(&mut self, _name: &'static str, _track: u32, _v: u64) {}

    /// Records an instantaneous sample of `name` on `track` at virtual
    /// time `vt`. Engines call this for gauges (queue length, GVT lag,
    /// deque depth) when [`tick`](Telemetry::tick) says a sample is due.
    #[inline(always)]
    fn sample(&mut self, _name: &'static str, _track: u32, _vt: f64, _v: f64) {}

    /// Advances the per-event cadence clock; returns `true` when the sink
    /// wants instantaneous samples for this event (the sampling cadence
    /// fired). Engines call this once per delivered event with a
    /// *monotone* virtual time (Time Warp passes GVT, not the rollback-
    /// prone local clock).
    #[inline(always)]
    fn tick(&mut self, _vt: f64) -> bool {
        false
    }
}

/// The disabled sink: `ENABLED = false`, every hook a no-op. An engine
/// instantiated with this monomorphizes to the uninstrumented engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTelemetry;

impl Telemetry for NoopTelemetry {
    const ENABLED: bool = false;
}

// Compile-time guarantee that the no-op sink stays free.
const _: () = assert!(!NoopTelemetry::ENABLED);

/// Sampling cadence and live-reporting configuration for
/// [`EngineTelemetry`].
#[derive(Clone)]
pub struct TelemetryConfig {
    /// Sample every this many delivered events (per sink). Default 1024.
    pub every_events: u64,
    /// Also sample whenever virtual time advances by this much since the
    /// last sample. Default `f64::INFINITY` (event-count cadence only).
    pub every_vt: f64,
    /// Optional shared live progress reporter, fed on each sample.
    pub progress: Option<Arc<ProgressReporter>>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            every_events: 1024,
            every_vt: f64::INFINITY,
            progress: None,
        }
    }
}

impl TelemetryConfig {
    /// Default cadence: one sample per 1024 delivered events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the event-count cadence (clamped to at least 1).
    pub fn every_events(mut self, n: u64) -> Self {
        self.every_events = n.max(1);
        self
    }

    /// Sets the virtual-time cadence.
    pub fn every_vt(mut self, dt: f64) -> Self {
        self.every_vt = dt;
        self
    }

    /// Attaches a shared live progress reporter.
    pub fn with_progress(mut self, progress: Arc<ProgressReporter>) -> Self {
        self.progress = Some(progress);
        self
    }
}

/// The recording [`Telemetry`] sink: one per LP (or worker), merged into a
/// [`TelemetryReport`] after the run.
///
/// Counters are cumulative; on each cadence firing every counter's current
/// value is appended to a same-named series, so counter *tracks* show rate
/// over virtual time in Perfetto. Series timestamps are clamped monotone
/// per `(name, track)` lane.
pub struct EngineTelemetry {
    cfg: TelemetryConfig,
    /// Default lane for the auto-recorded `"events"` counter.
    track: u32,
    counters: BTreeMap<(&'static str, u32), u64>,
    peaks: BTreeMap<(&'static str, u32), u64>,
    series: BTreeMap<(&'static str, u32), Vec<(f64, f64)>>,
    events_since: u64,
    total_events: u64,
    last_sample_vt: f64,
    last_vt: f64,
}

impl EngineTelemetry {
    /// Creates a sink whose auto-counted events land on lane `track`.
    pub fn for_track(cfg: TelemetryConfig, track: u32) -> Self {
        EngineTelemetry {
            cfg,
            track,
            counters: BTreeMap::new(),
            peaks: BTreeMap::new(),
            series: BTreeMap::new(),
            events_since: 0,
            total_events: 0,
            last_sample_vt: 0.0,
            last_vt: 0.0,
        }
    }

    /// Creates a sink on lane 0 with the given cadence.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self::for_track(cfg, 0)
    }

    /// Events ticked through this sink so far.
    pub fn events(&self) -> u64 {
        self.total_events
    }

    fn push_point(&mut self, name: &'static str, track: u32, vt: f64, v: f64) {
        let lane = self.series.entry((name, track)).or_default();
        // Clamp timestamps monotone per lane; engines feed monotone virtual
        // times, this guards float noise and makes the invariant structural.
        let t = match lane.last() {
            Some(&(t0, _)) => vt.max(t0),
            None => vt,
        };
        lane.push((t, v));
    }

    /// Appends every counter's cumulative value (plus the implicit
    /// `"events"` counter) to its series lane at `vt`.
    fn flush_counters(&mut self, vt: f64) {
        let snap: Vec<((&'static str, u32), u64)> =
            self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        for ((name, track), v) in snap {
            self.push_point(name, track, vt, v as f64);
        }
        let (events, track) = (self.total_events, self.track);
        self.push_point("events", track, vt, events as f64);
    }

    /// Drains this sink into a single-sink report (final counter flush at
    /// the last seen virtual time included).
    pub fn finish(mut self) -> TelemetryReport {
        if self.total_events > 0 {
            let vt = self.last_vt;
            self.flush_counters(vt);
            // Feed the tail to the live reporter: events since the last
            // cadence firing (possibly all of them, on a short run) would
            // otherwise be missing from the final progress line.
            if let Some(p) = &self.cfg.progress {
                p.observe(vt, self.events_since);
            }
        }
        TelemetryReport {
            counters: self.counters,
            peaks: self.peaks,
            series: self.series,
            events: self.total_events,
        }
    }
}

impl Telemetry for EngineTelemetry {
    #[inline]
    fn inc(&mut self, name: &'static str, track: u32, by: u64) {
        *self.counters.entry((name, track)).or_insert(0) += by;
    }

    #[inline]
    fn peak(&mut self, name: &'static str, track: u32, v: u64) {
        let slot = self.peaks.entry((name, track)).or_insert(0);
        if v > *slot {
            *slot = v;
        }
    }

    #[inline]
    fn sample(&mut self, name: &'static str, track: u32, vt: f64, v: f64) {
        self.push_point(name, track, vt, v);
    }

    fn tick(&mut self, vt: f64) -> bool {
        self.events_since += 1;
        self.total_events += 1;
        self.last_vt = vt;
        let due = self.events_since >= self.cfg.every_events
            || (vt - self.last_sample_vt) >= self.cfg.every_vt;
        if due {
            let delta = self.events_since;
            self.events_since = 0;
            self.last_sample_vt = vt;
            self.flush_counters(vt);
            if let Some(p) = &self.cfg.progress {
                p.observe(vt, delta);
            }
        }
        due
    }
}

/// One Perfetto counter track: a named per-lane series of `(virtual time,
/// value)` points, rendered by `lsds-trace` as `"ph":"C"` events alongside
/// the span tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Counter name (e.g. `"tw.gvt_lag"`).
    pub name: String,
    /// Lane (LP or worker id) — becomes the `tid` in the Chrome trace.
    pub track: u32,
    /// `(virtual time seconds, value)`, timestamps monotone.
    pub points: Vec<(f64, f64)>,
}

/// Merged post-run telemetry: counters, high-water marks, and sampled
/// series across every sink an engine ran.
#[derive(Debug, Default)]
pub struct TelemetryReport {
    counters: BTreeMap<(&'static str, u32), u64>,
    peaks: BTreeMap<(&'static str, u32), u64>,
    series: BTreeMap<(&'static str, u32), Vec<(f64, f64)>>,
    events: u64,
}

impl TelemetryReport {
    /// Merges per-LP/per-worker sinks into one report: counters and event
    /// totals add, peaks take the max, series concatenate per lane (each
    /// lane belongs to exactly one sink, so order is preserved).
    pub fn merge(sinks: Vec<EngineTelemetry>) -> TelemetryReport {
        let mut out = TelemetryReport::default();
        for sink in sinks {
            let part = sink.finish();
            out.events += part.events;
            for ((name, track), v) in part.counters {
                *out.counters.entry((name, track)).or_insert(0) += v;
            }
            for ((name, track), v) in part.peaks {
                let slot = out.peaks.entry((name, track)).or_insert(0);
                if v > *slot {
                    *slot = v;
                }
            }
            for (key, mut pts) in part.series {
                out.series.entry(key).or_default().append(&mut pts);
            }
        }
        out
    }

    /// Total events ticked across all merged sinks.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Sum of counter `name` across all lanes.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Counter `name` on a specific lane.
    pub fn counter_on(&self, name: &str, track: u32) -> u64 {
        self.counters
            .iter()
            .find(|((n, t), _)| *n == name && *t == track)
            .map(|(_, &v)| v)
            .unwrap_or(0)
    }

    /// Maximum of high-water mark `name` across all lanes.
    pub fn peak(&self, name: &str) -> u64 {
        self.peaks
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    }

    /// Sampled series for `name` on `track`, if any.
    pub fn series_on(&self, name: &str, track: u32) -> Option<&[(f64, f64)]> {
        self.series
            .iter()
            .find(|((n, t), _)| *n == name && *t == track)
            .map(|(_, pts)| pts.as_slice())
    }

    /// Iterates all `(name, track)` series lanes.
    pub fn series_lanes(&self) -> impl Iterator<Item = (&'static str, u32, &[(f64, f64)])> {
        self.series
            .iter()
            .map(|(&(name, track), pts)| (name, track, pts.as_slice()))
    }

    /// All sampled lanes as Perfetto counter tracks, name-then-lane sorted.
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        self.series
            .iter()
            .map(|(&(name, track), pts)| CounterTrack {
                name: name.to_string(),
                track,
                points: pts.clone(),
            })
            .collect()
    }

    /// Exports counters (aggregate and per-lane), peaks (as gauges), and
    /// series into a [`Registry`] under `prefix` (e.g. `"telemetry"`).
    ///
    /// Aggregate counters land at `{prefix}.{name}`, per-lane values at
    /// `{prefix}.{name}.{track}` (only when more than one lane recorded
    /// the name, to keep single-LP runs compact).
    pub fn export_metrics(&self, reg: &mut Registry, prefix: &str) {
        let mut lanes_per_name: BTreeMap<&'static str, u32> = BTreeMap::new();
        for &(name, _) in self.counters.keys() {
            *lanes_per_name.entry(name).or_insert(0) += 1;
        }
        for (&(name, track), &v) in &self.counters {
            reg.inc(&format!("{prefix}.{name}"), v);
            if lanes_per_name[name] > 1 {
                reg.inc(&format!("{prefix}.{name}.{track}"), v);
            }
        }
        for (&(name, track), &v) in &self.peaks {
            reg.set_gauge(&format!("{prefix}.{name}.{track}"), v as f64);
        }
        for (&(name, track), pts) in &self.series {
            let key = format!("{prefix}.{name}.{track}");
            for &(t, v) in pts {
                reg.series_update(&key, t, v);
            }
        }
    }
}

/// Shared live progress reporter for long runs: prints `virtual time vs
/// horizon, events, events/sec, ETA` to stderr, throttled by wall time.
///
/// Shareable across engine threads via `Arc`; all state is atomic. The
/// reporter only *reads* run progress — it never feeds back into
/// scheduling, so attaching one cannot perturb a run.
pub struct ProgressReporter {
    t_end: f64,
    start: Instant,
    events: AtomicU64,
    /// Max virtual time seen, as f64 bits (monotone, non-negative, so the
    /// integer compare in the CAS loop matches the float order).
    vt_bits: AtomicU64,
    /// Milliseconds since `start` of the last line printed.
    last_print_ms: AtomicU64,
    interval_ms: u64,
    quiet: bool,
}

impl ProgressReporter {
    /// Reporter for a run to virtual-time horizon `t_end`, printing at
    /// most every 500 ms of wall time.
    pub fn new(t_end: f64) -> Self {
        Self::with_interval(t_end, 500)
    }

    /// Reporter with an explicit minimum wall interval between lines.
    pub fn with_interval(t_end: f64, interval_ms: u64) -> Self {
        ProgressReporter {
            t_end,
            // lsds-lint: allow(wall-clock) reason="progress reporting measures host elapsed time for events/sec and ETA; it never feeds back into simulated time"
            start: Instant::now(),
            events: AtomicU64::new(0),
            vt_bits: AtomicU64::new(0),
            last_print_ms: AtomicU64::new(0),
            interval_ms,
            quiet: false,
        }
    }

    /// Reporter that accumulates but never prints (for tests).
    pub fn quiet(t_end: f64) -> Self {
        let mut p = Self::with_interval(t_end, u64::MAX);
        p.quiet = true;
        p
    }

    /// Records `delta` more events at virtual time `vt`, printing a line
    /// if the wall-clock throttle allows.
    pub fn observe(&self, vt: f64, delta: u64) {
        self.events.fetch_add(delta, Ordering::Relaxed);
        if vt > 0.0 {
            let bits = vt.to_bits();
            let mut cur = self.vt_bits.load(Ordering::Relaxed);
            while bits > cur {
                match self.vt_bits.compare_exchange_weak(
                    cur,
                    bits,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        if self.quiet {
            return;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < self.interval_ms {
            return;
        }
        if self
            .last_print_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            eprintln!("{}", self.line());
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Max virtual time recorded so far.
    pub fn vt(&self) -> f64 {
        f64::from_bits(self.vt_bits.load(Ordering::Relaxed))
    }

    /// Formats the current progress line.
    pub fn line(&self) -> String {
        let vt = self.vt();
        let events = self.events();
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            events as f64 / elapsed
        } else {
            0.0
        };
        let pct = if self.t_end > 0.0 {
            (vt / self.t_end * 100.0).min(100.0)
        } else {
            0.0
        };
        let eta = if vt > 0.0 && vt < self.t_end {
            let remaining = (self.t_end - vt) / vt * elapsed;
            format!("{remaining:.0}s")
        } else {
            "-".to_string()
        };
        format!(
            "[lsds] vt {vt:.3}/{:.3} ({pct:.0}%) | {events} events | {rate:.0} ev/s | eta {eta}",
            self.t_end
        )
    }

    /// Prints the final summary line (unconditionally, unless quiet).
    pub fn finish(&self) {
        if !self.quiet {
            eprintln!("{} | done", self.line());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_telemetry_is_a_unit() {
        assert_eq!(std::mem::size_of::<NoopTelemetry>(), 0);
        let mut t = NoopTelemetry;
        t.inc("x", 0, 1);
        t.peak("x", 0, 9);
        t.sample("x", 0, 1.0, 2.0);
        assert!(!t.tick(1.0));
    }

    #[test]
    fn counters_flush_on_event_cadence() {
        let mut tel = EngineTelemetry::for_track(TelemetryConfig::new().every_events(4), 7);
        for i in 0..8 {
            tel.inc("nulls", 7, 1);
            let due = tel.tick(i as f64);
            assert_eq!(due, i == 3 || i == 7, "cadence at event {i}");
        }
        let report = tel.finish();
        assert_eq!(report.counter("nulls"), 8);
        assert_eq!(report.counter_on("nulls", 7), 8);
        assert_eq!(report.events(), 8);
        // Two cadence flushes + one final flush.
        let pts = report.series_on("nulls", 7).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (3.0, 4.0));
        assert_eq!(pts[1], (7.0, 8.0));
        // The implicit events counter rides along.
        let ev = report.series_on("events", 7).unwrap();
        assert_eq!(ev[0], (3.0, 4.0));
    }

    #[test]
    fn vt_cadence_fires_on_time_advance() {
        let mut tel =
            EngineTelemetry::new(TelemetryConfig::new().every_events(u64::MAX).every_vt(10.0));
        assert!(!tel.tick(1.0));
        assert!(!tel.tick(9.0));
        assert!(tel.tick(10.0));
        assert!(!tel.tick(11.0));
        assert!(tel.tick(20.5));
    }

    #[test]
    fn series_timestamps_clamped_monotone() {
        let mut tel = EngineTelemetry::new(TelemetryConfig::new());
        tel.sample("lag", 0, 5.0, 1.0);
        tel.sample("lag", 0, 3.0, 2.0); // would go backwards
        tel.sample("lag", 0, 7.0, 3.0);
        let report = tel.finish();
        let pts = report.series_on("lag", 0).unwrap();
        assert_eq!(pts, &[(5.0, 1.0), (5.0, 2.0), (7.0, 3.0)]);
    }

    #[test]
    fn peaks_take_max() {
        let mut tel = EngineTelemetry::new(TelemetryConfig::new());
        tel.peak("hw", 0, 5);
        tel.peak("hw", 0, 3);
        tel.peak("hw", 0, 9);
        assert_eq!(tel.finish().peak("hw"), 9);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = EngineTelemetry::for_track(TelemetryConfig::new(), 0);
        let mut b = EngineTelemetry::for_track(TelemetryConfig::new(), 1);
        a.inc("steals", 0, 3);
        b.inc("steals", 1, 4);
        a.peak("depth", 0, 10);
        b.peak("depth", 1, 6);
        a.tick(1.0);
        b.tick(2.0);
        let report = TelemetryReport::merge(vec![a, b]);
        assert_eq!(report.counter("steals"), 7);
        assert_eq!(report.counter_on("steals", 0), 3);
        assert_eq!(report.counter_on("steals", 1), 4);
        assert_eq!(report.peak("depth"), 10);
        assert_eq!(report.events(), 2);
    }

    #[test]
    fn counter_tracks_carry_lanes_and_points() {
        let mut tel = EngineTelemetry::for_track(TelemetryConfig::new().every_events(1), 2);
        tel.inc("nulls", 2, 5);
        tel.tick(1.5);
        let tracks = TelemetryReport::merge(vec![tel]).counter_tracks();
        let nulls = tracks.iter().find(|t| t.name == "nulls").unwrap();
        assert_eq!(nulls.track, 2);
        assert_eq!(nulls.points[0], (1.5, 5.0));
        assert!(tracks.iter().any(|t| t.name == "events"));
    }

    #[test]
    fn export_metrics_lands_in_registry() {
        let mut a = EngineTelemetry::for_track(TelemetryConfig::new(), 0);
        let mut b = EngineTelemetry::for_track(TelemetryConfig::new(), 1);
        a.inc("rollbacks", 0, 2);
        b.inc("rollbacks", 1, 3);
        a.peak("queue_hw", 0, 42);
        a.sample("gvt_lag", 0, 1.0, 0.5);
        let report = TelemetryReport::merge(vec![a, b]);
        let mut reg = Registry::new();
        report.export_metrics(&mut reg, "tel");
        assert_eq!(reg.counter("tel.rollbacks"), 5);
        assert_eq!(reg.counter("tel.rollbacks.0"), 2);
        assert_eq!(reg.counter("tel.rollbacks.1"), 3);
        assert_eq!(reg.gauge("tel.queue_hw.0"), Some(42.0));
        assert!(reg.series("tel.gvt_lag.0").is_some());
    }

    #[test]
    fn progress_reporter_accumulates() {
        let p = ProgressReporter::quiet(40.0);
        p.observe(10.0, 100);
        p.observe(5.0, 50); // vt is monotone max
        assert_eq!(p.events(), 150);
        assert_eq!(p.vt(), 10.0);
        let line = p.line();
        assert!(line.contains("vt 10.000/40.000"), "{line}");
        assert!(line.contains("150 events"), "{line}");
        p.finish(); // quiet: no output, no panic
    }

    #[test]
    fn progress_line_shows_eta_dash_when_unknown() {
        let p = ProgressReporter::quiet(10.0);
        assert!(p.line().contains("eta -"));
    }
}
