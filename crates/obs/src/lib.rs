//! Observability layer for the `lsds` simulation workspace.
//!
//! The paper treats UI/output as a first-class design axis and singles out
//! MONARC 2's MonALISA-based monitoring as what makes large runs analyzable.
//! This crate is the reproduction's equivalent: a sim-time-aware metrics
//! [`Registry`] (counters, gauges, time-weighted series built on
//! `lsds_stats::TimeWeighted`, and value summaries) plus a [`Recorder`]
//! hook trait that the engines in `lsds-core` call on every event delivery,
//! clock advance, and event-list operation.
//!
//! The hooks are zero-cost when disabled: engines are generic over
//! `R: Recorder` with [`NoopRecorder`] as the default, whose empty inline
//! methods monomorphize away entirely. An instrumented engine with
//! `NoopRecorder` is therefore bit-for-bit identical in behavior to the
//! uninstrumented seed engines — `tests/determinism.rs` asserts this.
//!
//! Times cross this interface as raw `f64` seconds (not `SimTime`) so that
//! `lsds-core` can depend on this crate without a cycle.
//!
//! The causal tracing/profiling layer lives in its own crate and is
//! re-exported here as [`prof`]: engines reach the [`Tracer`] hook through
//! `lsds_obs` exactly like they reach [`Recorder`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod recorder;
pub mod registry;
pub mod telemetry;

pub use lsds_prof as prof;

pub use prof::{
    CriticalPath, CriticalStep, HandlerProfile, KindProfile, NoopTracer, RingTracer, Span,
    SpanKind, SpanTrace, TraceConfig, Tracer, NO_PARENT, NO_TAG,
};
pub use recorder::{MetricsRecorder, NoopRecorder, QueueOp, Recorder};
pub use registry::{Registry, Series, SeriesSnapshot, Snapshot, SummarySnapshot};
pub use telemetry::{
    CounterTrack, EngineTelemetry, NoopTelemetry, ProgressReporter, Telemetry, TelemetryConfig,
    TelemetryReport,
};
