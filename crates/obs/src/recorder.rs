//! Engine hook trait and its two implementations: the no-op default that
//! monomorphizes away, and the registry-backed metrics recorder.

use crate::registry::Registry;

/// An operation on an engine's event list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// An event was inserted into the pending-event list.
    Insert,
    /// The minimum event was removed for delivery.
    Pop,
}

/// Hooks the `lsds-core` engines invoke on their hot path.
///
/// All times are simulated seconds. Every method has an empty default body,
/// so an implementation only pays for what it overrides — and the engines'
/// default [`NoopRecorder`] pays for nothing at all: with an empty inline
/// body at every call site, the optimizer erases the hook entirely and the
/// instrumented engine is bit-for-bit the seed engine.
pub trait Recorder {
    /// Whether this recorder observes anything at all. Engines consult
    /// this to skip not just the hook call but the *computation of its
    /// arguments* (e.g. a queue-length query through a `dyn` event list,
    /// which the optimizer cannot prove side-effect-free and erase).
    const ENABLED: bool = true;

    /// An event was delivered to the model at time `t`.
    #[inline(always)]
    fn on_event(&mut self, _t: f64) {}

    /// The engine clock advanced from `from` to `to` (event jump, fixed
    /// tick, or integration step, depending on the engine).
    #[inline(always)]
    fn on_advance(&mut self, _from: f64, _to: f64) {}

    /// The event list was touched at time `t`; `len` is the pending count
    /// *after* the operation.
    #[inline(always)]
    fn on_queue_op(&mut self, _t: f64, _op: QueueOp, _len: usize) {}
}

/// The zero-cost default recorder: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;
}

/// A recorder that feeds a [`Registry`].
///
/// Metric names are `<prefix>.events`, `<prefix>.advances`,
/// `<prefix>.inserts`, `<prefix>.pops`, the gauge `<prefix>.clock`, and the
/// time-weighted series `<prefix>.queue_len`.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    registry: Registry,
    events_key: String,
    advances_key: String,
    inserts_key: String,
    pops_key: String,
    clock_key: String,
    queue_len_key: String,
}

impl MetricsRecorder {
    /// Creates a recorder with the conventional `engine` prefix.
    pub fn new() -> Self {
        Self::with_prefix("engine")
    }

    /// Creates a recorder whose metric names start with `prefix`.
    pub fn with_prefix(prefix: &str) -> Self {
        MetricsRecorder {
            registry: Registry::new(),
            events_key: format!("{prefix}.events"),
            advances_key: format!("{prefix}.advances"),
            inserts_key: format!("{prefix}.inserts"),
            pops_key: format!("{prefix}.pops"),
            clock_key: format!("{prefix}.clock"),
            queue_len_key: format!("{prefix}.queue_len"),
        }
    }

    /// The collected metrics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access, e.g. to add model-level metrics alongside.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Consumes the recorder, returning the registry.
    pub fn into_registry(self) -> Registry {
        self.registry
    }
}

impl Recorder for MetricsRecorder {
    fn on_event(&mut self, t: f64) {
        self.registry.inc(&self.events_key, 1);
        self.registry.set_gauge(&self.clock_key, t);
    }

    fn on_advance(&mut self, _from: f64, to: f64) {
        self.registry.inc(&self.advances_key, 1);
        self.registry.set_gauge(&self.clock_key, to);
    }

    fn on_queue_op(&mut self, t: f64, op: QueueOp, len: usize) {
        match op {
            QueueOp::Insert => self.registry.inc(&self.inserts_key, 1),
            QueueOp::Pop => self.registry.inc(&self.pops_key, 1),
        }
        self.registry
            .series_update(&self.queue_len_key, t, len as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_recorder_counts_hooks() {
        let mut rec = MetricsRecorder::new();
        rec.on_queue_op(0.0, QueueOp::Insert, 1);
        rec.on_advance(0.0, 1.0);
        rec.on_event(1.0);
        rec.on_queue_op(1.0, QueueOp::Pop, 0);
        let reg = rec.registry();
        assert_eq!(reg.counter("engine.events"), 1);
        assert_eq!(reg.counter("engine.advances"), 1);
        assert_eq!(reg.counter("engine.inserts"), 1);
        assert_eq!(reg.counter("engine.pops"), 1);
        assert_eq!(reg.gauge("engine.clock"), Some(1.0));
        let q = reg.series("engine.queue_len").unwrap();
        assert_eq!(q.value(), 0.0);
        assert_eq!(q.max(), 1.0);
    }

    #[test]
    fn noop_recorder_is_a_unit() {
        // compile-time property more than a runtime one: NoopRecorder has
        // no state, so engines parameterized by it carry no extra fields.
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        let mut n = NoopRecorder;
        n.on_event(1.0);
        n.on_advance(0.0, 1.0);
        n.on_queue_op(1.0, QueueOp::Pop, 3);
    }
}
