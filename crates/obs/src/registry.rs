//! Metrics registry: named counters, gauges, time-weighted series, and
//! value summaries, with deterministic (sorted) snapshot ordering.

use std::collections::BTreeMap;

use lsds_stats::{Summary, TimeWeighted};

/// Default maximum number of retained sample points per series. When the
/// cap is reached the series halves its retained points and doubles its
/// sampling stride, so memory stays bounded on year-long runs while the
/// time-weighted aggregates remain exact.
const SERIES_POINT_CAP: usize = 512;

/// A piecewise-constant signal tracked in simulated time.
///
/// Wraps [`TimeWeighted`] (exact average/max over the full run) and keeps a
/// bounded, stride-thinned sample of `(t, value)` step points for export.
#[derive(Debug, Clone)]
pub struct Series {
    tw: TimeWeighted,
    points: Vec<(f64, f64)>,
    stride: u64,
    seen: u64,
}

impl Series {
    fn new(t0: f64, v0: f64) -> Self {
        Series {
            tw: TimeWeighted::new(t0, v0),
            points: vec![(t0, v0)],
            stride: 1,
            seen: 0,
        }
    }

    fn update(&mut self, t: f64, v: f64) {
        self.tw.update(t, v);
        self.seen += 1;
        if !self.seen.is_multiple_of(self.stride) {
            return;
        }
        if self.points.len() >= SERIES_POINT_CAP {
            let mut keep = Vec::with_capacity(SERIES_POINT_CAP / 2 + 1);
            keep.extend(self.points.iter().step_by(2).copied());
            self.points = keep;
            self.stride *= 2;
            if !self.seen.is_multiple_of(self.stride) {
                return;
            }
        }
        self.points.push((t, v));
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.tw.value()
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.tw.max()
    }

    /// Exact time-average over the tracked interval ending at `t_end`.
    pub fn average(&self, t_end: f64) -> f64 {
        self.tw.average(t_end)
    }

    /// Retained (possibly thinned) step points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// An exported series: aggregates plus retained step points.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// Last recorded value.
    pub value: f64,
    /// Maximum value observed.
    pub max: f64,
    /// Time-weighted average over the observation window.
    pub average: f64,
    /// Retained `(time, value)` step points.
    pub points: Vec<(f64, f64)>,
}

/// An exported value summary (count/mean/min/max of untimed observations).
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean of the observations.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median estimate (log-bucketed, ≈6% relative error).
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// A point-in-time export of a [`Registry`], ordered by metric name so the
/// rendered output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Simulated time the snapshot was taken at (series averages close here).
    pub at: f64,
    /// Counter values, by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, by name.
    pub gauges: Vec<(String, f64)>,
    /// Time-weighted series, by name.
    pub series: Vec<SeriesSnapshot>,
    /// Untimed value summaries, by name.
    pub summaries: Vec<SummarySnapshot>,
}

/// Named metrics for one simulation run.
///
/// Four metric families cover the monitoring needs of the workspace:
/// monotone event **counters**, last-value **gauges**, time-weighted
/// **series** (queue lengths, link utilization, site occupancy), and
/// untimed value **summaries** (transfer latencies, job makespans).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Series>,
    summaries: BTreeMap<String, Summary>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Current counter value (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters whose name starts with `prefix`, in name order.
    /// Handy for pulling one subsystem's counter block out of a merged
    /// registry (e.g. every `net.` counter after `export_metrics`).
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges whose name starts with `prefix`, in name order
    /// (parity with [`Registry::counters_with_prefix`]).
    pub fn gauges_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, f64)> + 'a {
        self.gauges
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// All series whose name starts with `prefix`, in name order
    /// (parity with [`Registry::counters_with_prefix`]).
    pub fn series_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Series)> + 'a {
        self.series
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Sets the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records that the named series changed to value `v` at time `t`.
    /// The first call creates the series starting at `(t, v)`.
    pub fn series_update(&mut self, name: &str, t: f64, v: f64) {
        if let Some(s) = self.series.get_mut(name) {
            s.update(t, v);
        } else {
            self.series.insert(name.to_string(), Series::new(t, v));
        }
    }

    /// Adds `delta` to the named series at time `t` (queue-length style).
    pub fn series_add(&mut self, name: &str, t: f64, delta: f64) {
        if let Some(s) = self.series.get_mut(name) {
            let v = s.value() + delta;
            s.update(t, v);
        } else {
            self.series.insert(name.to_string(), Series::new(t, delta));
        }
    }

    /// The named series, if it exists.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Adds one observation `x` to the named summary.
    pub fn observe(&mut self, name: &str, x: f64) {
        self.summaries.entry(name.to_string()).or_default().add(x);
    }

    /// The named summary, if any observations were recorded.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Absorbs another registry: counters add, gauges and series overwrite
    /// on name collision, summaries merge.
    pub fn merge(&mut self, other: Registry) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            self.gauges.insert(k, v);
        }
        for (k, v) in other.series {
            self.series.insert(k, v);
        }
        for (k, v) in other.summaries {
            self.summaries.entry(k).or_default().merge(&v);
        }
    }

    /// Exports every metric, closing series averages at `t_end`.
    pub fn snapshot(&self, t_end: f64) -> Snapshot {
        Snapshot {
            at: t_end,
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            series: self
                .series
                .iter()
                .map(|(k, s)| SeriesSnapshot {
                    name: k.clone(),
                    value: s.value(),
                    max: s.max(),
                    average: s.average(t_end),
                    points: s.points.clone(),
                })
                .collect(),
            summaries: self
                .summaries
                .iter()
                .map(|(k, s)| {
                    // Export only finite values so the snapshot round-trips
                    // through JSON, which has no infinity/NaN literal. The
                    // ±inf min/max sentinels of an empty summary (reachable
                    // via [`Registry::merge`], which materializes the entry
                    // before the inner merge no-ops on zero counts), a
                    // NaN-poisoned mean, or percentiles of a stream holding
                    // non-finite observations all become 0.0, the same
                    // convention PR 6 set for the empty min/max.
                    let fin = |x: f64| if x.is_finite() { x } else { 0.0 };
                    SummarySnapshot {
                        name: k.clone(),
                        count: s.count(),
                        mean: fin(s.mean()),
                        min: if s.count() == 0 { 0.0 } else { fin(s.min()) },
                        max: if s.count() == 0 { 0.0 } else { fin(s.max()) },
                        p50: fin(s.p50()),
                        p95: fin(s.p95()),
                        p99: fin(s.p99()),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut reg = Registry::new();
        reg.inc("events", 3);
        reg.inc("events", 2);
        reg.set_gauge("clock", 1.5);
        reg.set_gauge("clock", 2.5);
        assert_eq!(reg.counter("events"), 5);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauge("clock"), Some(2.5));
    }

    #[test]
    fn counters_with_prefix_selects_one_block() {
        let mut reg = Registry::new();
        reg.inc("net.reshare_count", 4);
        reg.inc("net.route_cache_hits", 9);
        reg.inc("grid.jobs_done", 2);
        reg.inc("nets_other", 1); // shares a string prefix, not the block
        let net: Vec<(&str, u64)> = reg.counters_with_prefix("net.").collect();
        assert_eq!(
            net,
            vec![("net.reshare_count", 4), ("net.route_cache_hits", 9)]
        );
        assert_eq!(reg.counters_with_prefix("none.").count(), 0);
    }

    #[test]
    fn gauges_with_prefix_selects_one_block() {
        let mut reg = Registry::new();
        reg.set_gauge("engine.clock", 5.0);
        reg.set_gauge("engine.queue_high", 3.0);
        reg.set_gauge("net.load", 0.5);
        reg.set_gauge("engines_other", 1.0); // shares a string prefix only
        let eng: Vec<(&str, f64)> = reg.gauges_with_prefix("engine.").collect();
        assert_eq!(eng, vec![("engine.clock", 5.0), ("engine.queue_high", 3.0)]);
        assert_eq!(reg.gauges_with_prefix("none.").count(), 0);
    }

    #[test]
    fn series_with_prefix_selects_one_block() {
        let mut reg = Registry::new();
        reg.series_update("site.cpu", 0.0, 1.0);
        reg.series_update("site.queue", 0.0, 2.0);
        reg.series_update("net.util", 0.0, 0.5);
        reg.series_update("sites_other", 0.0, 9.0); // string prefix only
        let site: Vec<(&str, f64)> = reg
            .series_with_prefix("site.")
            .map(|(k, s)| (k, s.value()))
            .collect();
        assert_eq!(site, vec![("site.cpu", 1.0), ("site.queue", 2.0)]);
        assert_eq!(reg.series_with_prefix("none.").count(), 0);
    }

    #[test]
    fn snapshot_summaries_carry_percentiles() {
        let mut reg = Registry::new();
        for i in 1..=1000 {
            reg.observe("lat", i as f64);
        }
        let snap = reg.snapshot(1.0);
        let s = &snap.summaries[0];
        assert_eq!(s.count, 1000);
        assert!((s.p50 - 500.0).abs() / 500.0 < 0.07, "p50 {}", s.p50);
        assert!((s.p95 - 950.0).abs() / 950.0 < 0.07, "p95 {}", s.p95);
        assert!((s.p99 - 990.0).abs() / 990.0 < 0.07, "p99 {}", s.p99);
    }

    #[test]
    fn snapshot_of_empty_summary_is_finite() {
        // a summary entry that exists but holds zero observations (a
        // merge can materialize one) must not leak the ±inf min/max
        // sentinels into the snapshot — JSON would render them as null
        let mut via = Registry::new();
        via.summaries.insert("lat".into(), Summary::new());
        let s = &via.snapshot(0.0).summaries[0];
        assert_eq!(s.count, 0);
        for (label, v) in [
            ("mean", s.mean),
            ("min", s.min),
            ("max", s.max),
            ("p50", s.p50),
            ("p95", s.p95),
            ("p99", s.p99),
        ] {
            assert!(v.is_finite(), "{label} not finite on empty summary: {v}");
            assert_eq!(v, 0.0, "{label} must export 0.0 on empty summary");
        }
    }

    #[test]
    fn snapshot_of_single_sample_summary() {
        let mut reg = Registry::new();
        reg.observe("lat", 42.0);
        let s = &reg.snapshot(0.0).summaries[0];
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        // one sample: every percentile is that sample, exactly (the
        // log-bucket estimate clamps into [min, max])
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn snapshot_of_two_sample_summary() {
        let mut reg = Registry::new();
        reg.observe("lat", 10.0);
        reg.observe("lat", 30.0);
        let s = &reg.snapshot(0.0).summaries[0];
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        // percentiles stay inside the observed range and ordered
        assert!(s.p50 >= 10.0 && s.p50 <= 30.0, "p50 {}", s.p50);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "percentiles unordered");
        assert!(s.p99 <= 30.0);
        // the p50 rank (ceil(0.5·2) = 1st smallest) is the low sample
        assert!((s.p50 - 10.0).abs() / 10.0 < 0.07, "p50 {}", s.p50);
    }

    /// Regression (PR 7): a NaN-poisoned summary (mean NaN, min/max stuck
    /// at their ±inf sentinels) must still snapshot to all-finite fields —
    /// JSON has no NaN/infinity literal and `BENCH_*.json` consumers
    /// assume numbers.
    #[test]
    fn snapshot_of_nan_poisoned_summary_is_finite() {
        let mut reg = Registry::new();
        reg.observe("bad", f64::NAN);
        reg.observe("bad", f64::NAN);
        let s = &reg.snapshot(0.0).summaries[0];
        assert_eq!(s.count, 2);
        for (name, v) in [
            ("mean", s.mean),
            ("min", s.min),
            ("max", s.max),
            ("p50", s.p50),
            ("p95", s.p95),
            ("p99", s.p99),
        ] {
            assert!(v.is_finite(), "{name} leaked non-finite: {v}");
        }
    }

    /// Regression (PR 7): an infinite observation must not leak ±inf into
    /// the exported min/max/mean/percentiles.
    #[test]
    fn snapshot_with_infinite_observation_is_finite() {
        let mut reg = Registry::new();
        reg.observe("mixed", 1.0);
        reg.observe("mixed", f64::INFINITY);
        let s = &reg.snapshot(0.0).summaries[0];
        assert_eq!(s.count, 2);
        for (name, v) in [
            ("mean", s.mean),
            ("min", s.min),
            ("max", s.max),
            ("p50", s.p50),
            ("p95", s.p95),
            ("p99", s.p99),
        ] {
            assert!(v.is_finite(), "{name} leaked non-finite: {v}");
        }
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 0.0, "inf max sanitized to the 0.0 convention");
    }

    #[test]
    fn series_aggregates_are_exact() {
        let mut reg = Registry::new();
        reg.series_update("q", 0.0, 0.0);
        reg.series_update("q", 2.0, 1.0);
        reg.series_update("q", 6.0, 3.0);
        let s = reg.series("q").unwrap();
        assert_eq!(s.value(), 3.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.average(10.0) - (4.0 + 12.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn series_points_stay_bounded() {
        let mut reg = Registry::new();
        for i in 0..100_000u64 {
            reg.series_update("q", i as f64, (i % 7) as f64);
        }
        let s = reg.series("q").unwrap();
        assert!(s.points().len() <= SERIES_POINT_CAP + 1);
        // the exact average is untouched by point thinning
        let mean = (0..100_000u64).map(|i| (i % 7) as f64).sum::<f64>() / 100_000.0;
        assert!((s.average(100_000.0) - mean).abs() < 0.01);
    }

    #[test]
    fn merge_combines_families() {
        let mut a = Registry::new();
        a.inc("n", 1);
        a.observe("lat", 2.0);
        let mut b = Registry::new();
        b.inc("n", 2);
        b.observe("lat", 4.0);
        b.set_gauge("g", 9.0);
        a.merge(b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.summary("lat").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let mut reg = Registry::new();
        reg.inc("z", 1);
        reg.inc("a", 1);
        let snap = reg.snapshot(1.0);
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
