//! Randomized invariants of the composed grid model: jobs are conserved,
//! lifecycle timestamps are ordered, runs are reproducible.
//!
//! Cases are generated with the deterministic [`SimRng`] (seeded per
//! trial), replacing the property-testing framework the offline build
//! cannot fetch.

use lsds_core::SimTime;
use lsds_grid::model::{GridConfig, GridModel};
use lsds_grid::organization::{flat_grid, SiteSpec};
use lsds_grid::scheduler::LeastLoaded;
use lsds_grid::{Activity, ReplicationPolicy, SiteId};
use lsds_stats::{Dist, SimRng};

const TRIALS: u64 = 24;

fn build(
    n_sites: usize,
    n_jobs: u64,
    mean_ia: f64,
    mean_work: f64,
    files: usize,
    replication: ReplicationPolicy,
    seed: u64,
) -> GridConfig {
    let grid = flat_grid(
        vec![SiteSpec::default(); n_sites],
        lsds_net::mbps(622.0),
        0.005,
    );
    let initial_files = (0..files).map(|i| (0.5e9, SiteId(i % n_sites))).collect();
    let master = SimRng::new(seed);
    let activity = if files > 0 {
        Activity::analysis(
            0,
            mean_ia,
            Dist::exp_mean(mean_work),
            2,
            files,
            0.8,
            master.fork(1),
        )
    } else {
        Activity::compute(0, mean_ia, Dist::exp_mean(mean_work), master.fork(1))
    };
    GridConfig {
        grid,
        policy: Box::new(LeastLoaded),
        replication,
        activities: vec![activity.with_limit(n_jobs)],
        production: None,
        agent: None,
        eligible: None,
        initial_files,
        seed,
    }
}

/// Every generated job completes exactly once, with ordered lifecycle
/// timestamps, under any replication policy.
#[test]
fn jobs_conserved_and_ordered() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x6E1D0 + trial);
        let n_sites = 2 + rng.next_below(3) as usize;
        let n_jobs = 1 + rng.next_below(39);
        let mean_ia = rng.range_f64(1.0, 30.0);
        let mean_work = rng.range_f64(1.0, 100.0);
        let files = rng.next_below(10) as usize;
        let policy = [
            ReplicationPolicy::None,
            ReplicationPolicy::PullLru,
            ReplicationPolicy::PullLfu,
            ReplicationPolicy::PullEconomic,
            ReplicationPolicy::Push { threshold: 2 },
        ][rng.next_below(5) as usize];
        let seed = rng.next_below(500);
        let mut sim = GridModel::build(build(
            n_sites, n_jobs, mean_ia, mean_work, files, policy, seed,
        ));
        sim.run_until(SimTime::new(1.0e7));
        let m = sim.model();
        let rep = m.report();
        let case =
            format!("sites={n_sites} jobs={n_jobs} files={files} policy={policy:?} seed={seed}");
        assert_eq!(rep.records.len() as u64, n_jobs, "{case}");
        assert_eq!(m.in_flight(), 0, "nothing stuck: {case}");
        let mut ids: Vec<u64> = rep.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, n_jobs, "no duplicate completions: {case}");
        for r in &rep.records {
            assert!(r.submitted <= r.staged, "{case}");
            assert!(r.staged <= r.started, "{case}");
            assert!(r.started <= r.finished, "{case}");
            assert!(r.site.0 < n_sites, "{case}");
            assert!(r.staged_bytes >= 0.0, "{case}");
        }
        if files == 0 {
            assert_eq!(rep.wan_bytes, 0.0, "{case}");
        }
    }
}

/// Bit-for-bit reproducibility for any configuration.
#[test]
fn reproducible() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x6E1D1 + trial);
        let n_jobs = 1 + rng.next_below(24);
        let seed = rng.next_below(200);
        let policy = [
            ReplicationPolicy::None,
            ReplicationPolicy::PullLru,
            ReplicationPolicy::Push { threshold: 2 },
        ][rng.next_below(3) as usize];
        let run = || {
            let mut sim = GridModel::build(build(3, n_jobs, 5.0, 20.0, 6, policy, seed));
            sim.run_until(SimTime::new(1.0e7));
            sim.model()
                .report()
                .records
                .iter()
                .map(|r| (r.id.0, r.site.0, r.finished.seconds()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
