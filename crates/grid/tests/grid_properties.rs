//! Property-based invariants of the composed grid model: jobs are
//! conserved, lifecycle timestamps are ordered, runs are reproducible.

use lsds_core::SimTime;
use lsds_grid::model::{GridConfig, GridModel};
use lsds_grid::organization::{flat_grid, SiteSpec};
use lsds_grid::scheduler::LeastLoaded;
use lsds_grid::{Activity, ReplicationPolicy, SiteId};
use lsds_stats::{Dist, SimRng};
use proptest::prelude::*;

fn build(
    n_sites: usize,
    n_jobs: u64,
    mean_ia: f64,
    mean_work: f64,
    files: usize,
    replication: ReplicationPolicy,
    seed: u64,
) -> GridConfig {
    let grid = flat_grid(
        vec![SiteSpec::default(); n_sites],
        lsds_net::mbps(622.0),
        0.005,
    );
    let initial_files = (0..files).map(|i| (0.5e9, SiteId(i % n_sites))).collect();
    let master = SimRng::new(seed);
    let activity = if files > 0 {
        Activity::analysis(
            0,
            mean_ia,
            Dist::exp_mean(mean_work),
            2,
            files,
            0.8,
            master.fork(1),
        )
    } else {
        Activity::compute(0, mean_ia, Dist::exp_mean(mean_work), master.fork(1))
    };
    GridConfig {
        grid,
        policy: Box::new(LeastLoaded),
        replication,
        activities: vec![activity.with_limit(n_jobs)],
        production: None,
        agent: None,
        eligible: None,
        initial_files,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated job completes exactly once, with ordered lifecycle
    /// timestamps, under any replication policy.
    #[test]
    fn jobs_conserved_and_ordered(
        n_sites in 2usize..5,
        n_jobs in 1u64..40,
        mean_ia in 1.0..30.0f64,
        mean_work in 1.0..100.0f64,
        files in 0usize..10,
        policy_idx in 0usize..5,
        seed in 0u64..500,
    ) {
        let policy = [
            ReplicationPolicy::None,
            ReplicationPolicy::PullLru,
            ReplicationPolicy::PullLfu,
            ReplicationPolicy::PullEconomic,
            ReplicationPolicy::Push { threshold: 2 },
        ][policy_idx];
        let mut sim = GridModel::build(build(
            n_sites, n_jobs, mean_ia, mean_work, files, policy, seed,
        ));
        sim.run_until(SimTime::new(1.0e7));
        let m = sim.model();
        let rep = m.report();
        prop_assert_eq!(rep.records.len() as u64, n_jobs);
        prop_assert_eq!(m.in_flight(), 0, "nothing stuck");
        let mut ids: Vec<u64> = rep.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, n_jobs, "no duplicate completions");
        for r in &rep.records {
            prop_assert!(r.submitted <= r.staged);
            prop_assert!(r.staged <= r.started);
            prop_assert!(r.started <= r.finished);
            prop_assert!(r.site.0 < n_sites);
            prop_assert!(r.staged_bytes >= 0.0);
        }
        if files == 0 {
            prop_assert_eq!(rep.wan_bytes, 0.0);
        }
    }

    /// Bit-for-bit reproducibility for any configuration.
    #[test]
    fn reproducible(
        n_jobs in 1u64..25,
        seed in 0u64..200,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            ReplicationPolicy::None,
            ReplicationPolicy::PullLru,
            ReplicationPolicy::Push { threshold: 2 },
        ][policy_idx];
        let run = || {
            let mut sim = GridModel::build(build(3, n_jobs, 5.0, 20.0, 6, policy, seed));
            sim.run_until(SimTime::new(1.0e7));
            sim.model()
                .report()
                .records
                .iter()
                .map(|r| (r.id.0, r.site.0, r.finished.seconds()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
