//! Storage resources: disks, mass storage (tape), and database servers.
//!
//! "Such hosts may contain computing, data storage, and other resources"
//! (§3); MONARC's regional centers bundle "database servers and mass
//! storage units" (§4). Disk capacity and eviction order are what the
//! replication strategies of E7/E8 manipulate.

use crate::replication::FileId;
use lsds_core::{Schedule, SimTime};
use std::collections::{HashMap, VecDeque};

/// Metadata for a file resident on a storage element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileMeta {
    /// Size in bytes.
    pub size: f64,
    /// Last access time (LRU state).
    pub last_access: SimTime,
    /// Access count since arrival (LFU / economic state).
    pub accesses: u64,
    /// Pinned files (inputs of running jobs) cannot be evicted.
    pub pins: u32,
}

/// A disk pool with finite capacity and replacement bookkeeping.
#[derive(Debug, Clone)]
pub struct StorageElement {
    capacity: f64,
    used: f64,
    files: HashMap<u64, FileMeta>,
}

impl StorageElement {
    /// Creates a disk of `capacity` bytes.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "bad capacity");
        StorageElement {
            capacity,
            used: 0.0,
            files: HashMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Bytes in use.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Free bytes.
    pub fn free(&self) -> f64 {
        self.capacity - self.used
    }

    /// Whether `file` is resident.
    pub fn has(&self, file: FileId) -> bool {
        self.files.contains_key(&file.0)
    }

    /// Number of resident files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Metadata of a resident file.
    pub fn meta(&self, file: FileId) -> Option<&FileMeta> {
        self.files.get(&file.0)
    }

    /// Records an access (updates LRU/LFU state). Returns false if the
    /// file is not resident.
    pub fn touch(&mut self, file: FileId, now: SimTime) -> bool {
        match self.files.get_mut(&file.0) {
            Some(m) => {
                m.last_access = now;
                m.accesses += 1;
                true
            }
            None => false,
        }
    }

    /// Pins a resident file against eviction.
    pub fn pin(&mut self, file: FileId) {
        if let Some(m) = self.files.get_mut(&file.0) {
            m.pins += 1;
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, file: FileId) {
        if let Some(m) = self.files.get_mut(&file.0) {
            assert!(m.pins > 0, "unpin without pin");
            m.pins -= 1;
        }
    }

    /// Stores a file, assuming capacity was already freed. Panics if it
    /// does not fit — callers must evict first (see [`evict_candidates`]).
    ///
    /// [`evict_candidates`]: StorageElement::evict_candidates
    pub fn store(&mut self, file: FileId, size: f64, now: SimTime) {
        assert!(size > 0.0, "bad size");
        assert!(
            self.used + size <= self.capacity * (1.0 + 1e-9),
            "store without room: {} + {size} > {}",
            self.used,
            self.capacity
        );
        let prev = self.files.insert(
            file.0,
            FileMeta {
                size,
                last_access: now,
                accesses: 1,
                pins: 0,
            },
        );
        assert!(prev.is_none(), "file already resident");
        self.used += size;
    }

    /// Deletes a file (no-op if absent). Pinned files cannot be deleted.
    pub fn delete(&mut self, file: FileId) {
        if let Some(m) = self.files.get(&file.0) {
            assert_eq!(m.pins, 0, "deleting pinned file");
            self.used -= m.size;
            self.files.remove(&file.0);
        }
    }

    /// Unpinned resident files ordered by eviction preference under the
    /// given comparator key: smaller key = evicted first.
    pub fn evict_candidates(&self, key: impl Fn(&FileMeta) -> f64) -> Vec<(FileId, f64)> {
        let mut v: Vec<(FileId, f64)> = self
            .files
            .iter()
            .filter(|(_, m)| m.pins == 0)
            .map(|(&id, m)| (FileId(id), key(m)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }

    /// Frees at least `needed` bytes by evicting unpinned files in order
    /// of ascending `key`. Returns the evicted files, or `None` (state
    /// unchanged) if even full eviction cannot make room.
    pub fn make_room(
        &mut self,
        needed: f64,
        key: impl Fn(&FileMeta) -> f64,
    ) -> Option<Vec<FileId>> {
        if self.free() >= needed {
            return Some(Vec::new());
        }
        let candidates = self.evict_candidates(key);
        let evictable: f64 = candidates
            .iter()
            .map(|(id, _)| self.files[&id.0].size)
            .sum();
        if self.free() + evictable < needed {
            return None;
        }
        let mut evicted = Vec::new();
        for (id, _) in candidates {
            if self.free() >= needed {
                break;
            }
            self.delete(id);
            evicted.push(id);
        }
        Some(evicted)
    }
}

/// Events of the mass-storage component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapeEvent {
    /// A drive finished a recall.
    DriveDone {
        /// Request tag being served.
        tag: u64,
    },
}

/// A tape silo: limited drives, mount latency, sequential read rate.
///
/// Requests queue FIFO for a free drive; service time is
/// `mount_latency + bytes / read_rate`.
pub struct MassStorage {
    drives: usize,
    busy: usize,
    mount_latency: f64,
    read_rate: f64,
    waiting: VecDeque<(u64, f64)>,
    served: u64,
}

impl MassStorage {
    /// Creates a silo with `drives` drives.
    pub fn new(drives: usize, mount_latency: f64, read_rate: f64) -> Self {
        assert!(drives > 0 && read_rate > 0.0 && mount_latency >= 0.0);
        MassStorage {
            drives,
            busy: 0,
            mount_latency,
            read_rate,
            waiting: VecDeque::new(),
            served: 0,
        }
    }

    /// Requests queued for a drive.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Recalls served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests a recall of `bytes`, tagged `tag`. Completion arrives as
    /// [`TapeEvent::DriveDone`].
    pub fn recall(&mut self, tag: u64, bytes: f64, sched: &mut impl Schedule<TapeEvent>) {
        if self.busy < self.drives {
            self.busy += 1;
            let service = self.mount_latency + bytes / self.read_rate;
            sched.schedule_in(service, TapeEvent::DriveDone { tag });
        } else {
            self.waiting.push_back((tag, bytes));
        }
    }

    /// Handles a drive completion; returns the finished tag.
    pub fn handle(&mut self, ev: TapeEvent, sched: &mut impl Schedule<TapeEvent>) -> u64 {
        let TapeEvent::DriveDone { tag } = ev;
        self.served += 1;
        if let Some((next_tag, bytes)) = self.waiting.pop_front() {
            let service = self.mount_latency + bytes / self.read_rate;
            sched.schedule_in(service, TapeEvent::DriveDone { tag: next_tag });
        } else {
            self.busy -= 1;
        }
        tag
    }
}

/// Events of the database-server component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DbEvent {
    /// A server finished a query.
    QueryDone {
        /// Request tag being served.
        tag: u64,
    },
}

/// A database server pool: `c` identical servers with a fixed service
/// demand per query — an M/D/c station when arrivals are Poisson, which is
/// exactly what the E11 validation checks against.
pub struct DbServer {
    servers: usize,
    busy: usize,
    service_seconds: f64,
    waiting: VecDeque<u64>,
    served: u64,
}

impl DbServer {
    /// Creates a pool of `servers` with the given per-query service time.
    pub fn new(servers: usize, service_seconds: f64) -> Self {
        assert!(servers > 0 && service_seconds > 0.0);
        DbServer {
            servers,
            busy: 0,
            service_seconds,
            waiting: VecDeque::new(),
            served: 0,
        }
    }

    /// Queries waiting for a server.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Queries served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Submits a query.
    pub fn query(&mut self, tag: u64, sched: &mut impl Schedule<DbEvent>) {
        if self.busy < self.servers {
            self.busy += 1;
            sched.schedule_in(self.service_seconds, DbEvent::QueryDone { tag });
        } else {
            self.waiting.push_back(tag);
        }
    }

    /// Handles a completion; returns the finished tag.
    pub fn handle(&mut self, ev: DbEvent, sched: &mut impl Schedule<DbEvent>) -> u64 {
        let DbEvent::QueryDone { tag } = ev;
        self.served += 1;
        if let Some(next) = self.waiting.pop_front() {
            sched.schedule_in(self.service_seconds, DbEvent::QueryDone { tag: next });
        } else {
            self.busy -= 1;
        }
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsds_core::{Ctx, EventDriven, Model};

    #[test]
    fn store_touch_delete() {
        let mut d = StorageElement::new(100.0);
        d.store(FileId(1), 40.0, SimTime::ZERO);
        d.store(FileId(2), 30.0, SimTime::new(1.0));
        assert_eq!(d.used(), 70.0);
        assert!(d.has(FileId(1)));
        assert!(d.touch(FileId(1), SimTime::new(2.0)));
        assert_eq!(d.meta(FileId(1)).unwrap().accesses, 2);
        d.delete(FileId(1));
        assert!(!d.has(FileId(1)));
        assert_eq!(d.used(), 30.0);
        assert!(!d.touch(FileId(1), SimTime::new(3.0)));
    }

    #[test]
    #[should_panic]
    fn overfull_store_panics() {
        let mut d = StorageElement::new(100.0);
        d.store(FileId(1), 60.0, SimTime::ZERO);
        d.store(FileId(2), 60.0, SimTime::ZERO);
    }

    #[test]
    fn lru_eviction_order() {
        let mut d = StorageElement::new(100.0);
        d.store(FileId(1), 40.0, SimTime::new(0.0));
        d.store(FileId(2), 40.0, SimTime::new(1.0));
        d.touch(FileId(1), SimTime::new(5.0)); // 1 is now most recent
        let evicted = d.make_room(30.0, |m| m.last_access.seconds()).unwrap();
        assert_eq!(evicted, vec![FileId(2)]);
        assert!(d.has(FileId(1)));
    }

    #[test]
    fn lfu_eviction_order() {
        let mut d = StorageElement::new(100.0);
        d.store(FileId(1), 40.0, SimTime::ZERO);
        d.store(FileId(2), 40.0, SimTime::ZERO);
        d.touch(FileId(2), SimTime::new(1.0));
        d.touch(FileId(2), SimTime::new(2.0));
        let evicted = d.make_room(30.0, |m| m.accesses as f64).unwrap();
        assert_eq!(evicted, vec![FileId(1)]);
    }

    #[test]
    fn pinned_files_survive_eviction() {
        let mut d = StorageElement::new(100.0);
        d.store(FileId(1), 50.0, SimTime::ZERO);
        d.store(FileId(2), 50.0, SimTime::new(1.0));
        d.pin(FileId(1));
        let evicted = d.make_room(40.0, |m| m.last_access.seconds()).unwrap();
        assert_eq!(evicted, vec![FileId(2)], "only unpinned file evicted");
        assert!(d.has(FileId(1)));
        // now nothing can be evicted
        assert!(d.make_room(60.0, |m| m.last_access.seconds()).is_none());
        d.unpin(FileId(1));
        assert!(d.make_room(60.0, |m| m.last_access.seconds()).is_some());
    }

    #[test]
    fn make_room_noop_when_space_free() {
        let mut d = StorageElement::new(100.0);
        d.store(FileId(1), 10.0, SimTime::ZERO);
        assert_eq!(d.make_room(50.0, |m| m.size).unwrap(), vec![]);
    }

    // -- tape --

    struct TapeHarness {
        tape: MassStorage,
        done: Vec<(u64, f64)>,
    }
    enum TE {
        Recall(u64, f64),
        Tape(TapeEvent),
    }
    impl Model for TapeHarness {
        type Event = TE;
        fn handle(&mut self, ev: TE, ctx: &mut Ctx<'_, TE>) {
            match ev {
                TE::Recall(tag, bytes) => self.tape.recall(tag, bytes, &mut ctx.map(TE::Tape)),
                TE::Tape(te) => {
                    let tag = self.tape.handle(te, &mut ctx.map(TE::Tape));
                    self.done.push((tag, ctx.now().seconds()));
                }
            }
        }
    }

    #[test]
    fn tape_drives_limit_concurrency() {
        let mut sim = EventDriven::new(TapeHarness {
            tape: MassStorage::new(1, 10.0, 100.0), // mount 10s, 100 B/s
            done: vec![],
        });
        sim.schedule(SimTime::ZERO, TE::Recall(1, 1000.0)); // 10+10=20s
        sim.schedule(SimTime::ZERO, TE::Recall(2, 500.0)); // waits, 10+5
        sim.run();
        let m = sim.model();
        assert_eq!(m.done[0], (1, 20.0));
        assert_eq!(m.done[1], (2, 35.0));
        assert_eq!(m.tape.served(), 2);
    }

    // -- db --

    struct DbHarness {
        db: DbServer,
        done: Vec<(u64, f64)>,
    }
    enum DE {
        Query(u64),
        Db(DbEvent),
    }
    impl Model for DbHarness {
        type Event = DE;
        fn handle(&mut self, ev: DE, ctx: &mut Ctx<'_, DE>) {
            match ev {
                DE::Query(tag) => self.db.query(tag, &mut ctx.map(DE::Db)),
                DE::Db(de) => {
                    let tag = self.db.handle(de, &mut ctx.map(DE::Db));
                    self.done.push((tag, ctx.now().seconds()));
                }
            }
        }
    }

    #[test]
    fn db_pool_queues_excess_queries() {
        let mut sim = EventDriven::new(DbHarness {
            db: DbServer::new(2, 1.0),
            done: vec![],
        });
        for tag in 0..4 {
            sim.schedule(SimTime::ZERO, DE::Query(tag));
        }
        sim.run();
        let ends: Vec<f64> = sim.model().done.iter().map(|&(_, t)| t).collect();
        assert_eq!(ends, vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(sim.model().db.queue_len(), 0);
    }
}
