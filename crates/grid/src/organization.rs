//! Resource organization models: Bricks' "central model" and MONARC's
//! "tier model".
//!
//! "Examples of resource organization in simulation are the 'central
//! model' proposed by the Bricks project or the 'tier model' proposed by
//! the MONARC project." (§3) — "In this \[central\] simulation model it is
//! assumed that all the jobs are processed at a single site. In contrast
//! … the 'tier model', in which jobs are processed according to their
//! hierarchical levels." (§4)

use crate::cpu::{CpuFarm, Discipline, Sharing};
use crate::site::{Site, SiteId};
use crate::storage::StorageElement;
use lsds_net::{NodeKind, Topology};

/// How sites are organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// One central execution site; clients only submit (Bricks).
    Central,
    /// Hierarchical tiers; jobs run at their tier level (MONARC).
    Tiered,
    /// No imposed structure (flat peer sites).
    Flat,
}

/// Knobs for the stock grid builders.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Cores in the site's farm.
    pub cores: usize,
    /// Per-core relative speed.
    pub speed: f64,
    /// CPU sharing mode.
    pub sharing: Sharing,
    /// Local queue discipline.
    pub discipline: Discipline,
    /// Disk bytes.
    pub disk: f64,
    /// Price per reference-CPU-second.
    pub price: f64,
}

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec {
            cores: 16,
            speed: 1.0,
            sharing: Sharing::Space,
            discipline: Discipline::Fifo,
            disk: 10.0e12,
            price: 1.0,
        }
    }
}

/// A built grid: sites plus the topology they attach to.
pub struct BuiltGrid {
    /// The sites, indexed by `SiteId`.
    pub sites: Vec<Site>,
    /// Network connecting them.
    pub topology: Topology,
    /// The organization used.
    pub organization: Organization,
    /// Parent of each site in a tiered grid (`None` for the root / flat).
    pub parents: Vec<Option<SiteId>>,
}

/// Builds a Bricks-style central grid: one execution site ("the server")
/// and `n_clients` client sites with no local compute that submit over
/// WAN links of `client_bw` bytes/s.
pub fn central_grid(
    n_clients: usize,
    server: SiteSpec,
    client_disk: f64,
    client_bw: f64,
    latency: f64,
) -> BuiltGrid {
    let mut topo = Topology::new();
    let server_node = topo.add_node(NodeKind::Host, "server");
    let mut sites = Vec::new();
    sites.push(Site::new(
        SiteId(0),
        "server",
        0,
        server_node,
        CpuFarm::new(
            server.cores,
            server.speed,
            server.sharing,
            server.discipline,
        ),
        StorageElement::new(server.disk),
        server.price,
    ));
    let mut parents = vec![None];
    for i in 0..n_clients {
        let node = topo.add_node(NodeKind::Host, format!("client{i}"));
        topo.add_duplex(node, server_node, client_bw, latency);
        sites.push(Site::new(
            SiteId(i + 1),
            format!("client{i}"),
            1,
            node,
            // clients have a token farm so local placement stays possible,
            // but the central scheduler never uses it
            CpuFarm::new(1, 1.0e-6, Sharing::Space, Discipline::Fifo),
            StorageElement::new(client_disk),
            f64::INFINITY,
        ));
        parents.push(Some(SiteId(0)));
    }
    BuiltGrid {
        sites,
        topology: topo,
        organization: Organization::Central,
        parents,
    }
}

/// Builds a MONARC-style tiered grid: one T0, `n_t1` tier-1 centers and
/// `t2_per_t1` tier-2 centers under each T1. Link parameters per level.
#[allow(clippy::too_many_arguments)]
pub fn tiered_grid(
    t0: SiteSpec,
    n_t1: usize,
    t1: SiteSpec,
    t2_per_t1: usize,
    t2: SiteSpec,
    t0_t1_bw: f64,
    t1_t2_bw: f64,
    latency: f64,
) -> BuiltGrid {
    let mut topo = Topology::new();
    let mut sites = Vec::new();
    let mut parents = Vec::new();

    let t0_node = topo.add_node(NodeKind::Host, "T0");
    sites.push(Site::new(
        SiteId(0),
        "T0",
        0,
        t0_node,
        CpuFarm::new(t0.cores, t0.speed, t0.sharing, t0.discipline),
        StorageElement::new(t0.disk),
        t0.price,
    ));
    parents.push(None);

    for i in 0..n_t1 {
        let t1_node = topo.add_node(NodeKind::Host, format!("T1-{i}"));
        topo.add_duplex(t1_node, t0_node, t0_t1_bw, latency);
        let t1_id = SiteId(sites.len());
        sites.push(Site::new(
            t1_id,
            format!("T1-{i}"),
            1,
            t1_node,
            CpuFarm::new(t1.cores, t1.speed, t1.sharing, t1.discipline),
            StorageElement::new(t1.disk),
            t1.price,
        ));
        parents.push(Some(SiteId(0)));
        for j in 0..t2_per_t1 {
            let t2_node = topo.add_node(NodeKind::Host, format!("T2-{i}-{j}"));
            topo.add_duplex(t2_node, t1_node, t1_t2_bw, latency);
            sites.push(Site::new(
                SiteId(sites.len()),
                format!("T2-{i}-{j}"),
                2,
                t2_node,
                CpuFarm::new(t2.cores, t2.speed, t2.sharing, t2.discipline),
                StorageElement::new(t2.disk),
                t2.price,
            ));
            parents.push(Some(t1_id));
        }
    }
    BuiltGrid {
        sites,
        topology: topo,
        organization: Organization::Tiered,
        parents,
    }
}

/// Builds a flat peer grid: `n` sites around a switch, all equal except
/// for the supplied per-site overrides.
pub fn flat_grid(specs: Vec<SiteSpec>, bw: f64, latency: f64) -> BuiltGrid {
    let n = specs.len();
    let (topo, hosts) = Topology::star(n, bw, latency);
    let sites = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            Site::new(
                SiteId(i),
                format!("site{i}"),
                1,
                hosts[i],
                CpuFarm::new(spec.cores, spec.speed, spec.sharing, spec.discipline),
                StorageElement::new(spec.disk),
                spec.price,
            )
        })
        .collect();
    BuiltGrid {
        sites,
        topology: topo,
        organization: Organization::Flat,
        parents: vec![None; n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsds_net::mbps;

    #[test]
    fn central_grid_shape() {
        let g = central_grid(4, SiteSpec::default(), 1.0e9, mbps(100.0), 0.01);
        assert_eq!(g.sites.len(), 5);
        assert_eq!(g.organization, Organization::Central);
        assert_eq!(g.parents[0], None);
        assert!(g.parents[1..].iter().all(|p| *p == Some(SiteId(0))));
        assert_eq!(g.topology.node_count(), 5);
    }

    #[test]
    fn tiered_grid_shape() {
        let g = tiered_grid(
            SiteSpec::default(),
            2,
            SiteSpec::default(),
            3,
            SiteSpec::default(),
            mbps(2500.0),
            mbps(622.0),
            0.02,
        );
        // 1 + 2 + 6 sites
        assert_eq!(g.sites.len(), 9);
        assert_eq!(g.sites[0].tier, 0);
        assert_eq!(g.parents[1], Some(SiteId(0)));
        // T2s under first T1 are sites 2,3,4
        assert_eq!(g.parents[2], Some(SiteId(1)));
        let t2_count = g.sites.iter().filter(|s| s.tier == 2).count();
        assert_eq!(t2_count, 6);
    }

    #[test]
    fn flat_grid_shape() {
        let g = flat_grid(vec![SiteSpec::default(); 6], mbps(1000.0), 0.005);
        assert_eq!(g.sites.len(), 6);
        assert_eq!(g.organization, Organization::Flat);
        assert!(g.parents.iter().all(|p| p.is_none()));
    }
}
