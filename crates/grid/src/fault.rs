//! Deterministic fault injection for grid scenarios.
//!
//! A [`FaultSchedule`] is a list of timed fault events — link outages and
//! degradations (delegating to [`lsds_net::LinkFault`]) plus site crashes
//! and recoveries — handed to a `GridModel` before the run. At `Init` the
//! model schedules every event through its own engine, so faults are
//! ordinary simulation events: a same-seed faulty run is bit-identical,
//! repeatable, and composable with every scheduler/replication policy.
//!
//! Schedules are built either *deterministically* (explicit
//! [`FaultSchedule::link_outage`]/[`FaultSchedule::site_outage`] calls —
//! the taxonomy's "deterministic" behavior class) or *probabilistically*
//! from a seeded outage process ([`FaultSchedule::poisson_link_outages`]),
//! which is still reproducible under its seed (the "probabilistic" class).

use crate::site::SiteId;
use lsds_net::{LinkFault, LinkId};
use lsds_stats::SimRng;

/// One fault, applied at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A network link state change (down / up / degrade).
    Link(LinkFault),
    /// The site's CPU farm crashes: running and queued jobs are lost and
    /// re-queued by the grid; the site stops accepting placements. Its
    /// disk, tape, and database survive (storage outlives compute — the
    /// common regional-center failure mode).
    SiteCrash(SiteId),
    /// The site accepts placements again.
    SiteRecover(SiteId),
}

/// A [`FaultKind`] with its injection time (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A timed schedule of fault events for one run.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no faults — the failure-free baseline).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds one event.
    pub fn push(&mut self, at: f64, kind: FaultKind) -> &mut Self {
        assert!(at >= 0.0 && at.is_finite(), "bad fault time");
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Link goes down at `at` and comes back `duration` seconds later.
    pub fn link_outage(&mut self, link: LinkId, at: f64, duration: f64) -> &mut Self {
        assert!(duration > 0.0, "bad outage duration");
        self.push(at, FaultKind::Link(LinkFault::Down(link)));
        self.push(at + duration, FaultKind::Link(LinkFault::Up(link)));
        self
    }

    /// Link runs at `factor ×` nominal bandwidth from `at` for `duration`
    /// seconds, then returns to nominal.
    pub fn degrade(&mut self, link: LinkId, at: f64, duration: f64, factor: f64) -> &mut Self {
        assert!(duration > 0.0, "bad degradation duration");
        self.push(at, FaultKind::Link(LinkFault::Degrade { link, factor }));
        self.push(
            at + duration,
            FaultKind::Link(LinkFault::Degrade { link, factor: 1.0 }),
        );
        self
    }

    /// Site crashes at `at` and recovers `duration` seconds later.
    pub fn site_outage(&mut self, site: SiteId, at: f64, duration: f64) -> &mut Self {
        assert!(duration > 0.0, "bad outage duration");
        self.push(at, FaultKind::SiteCrash(site));
        self.push(at + duration, FaultKind::SiteRecover(site));
        self
    }

    /// Appends a seeded Poisson outage process over `links` (exponential
    /// mean-time-between-failures / mean-time-to-repair), reproducible
    /// under the caller's [`SimRng`] stream.
    pub fn poisson_link_outages(
        &mut self,
        rng: &mut SimRng,
        links: &[LinkId],
        horizon: f64,
        mtbf: f64,
        mttr: f64,
    ) -> &mut Self {
        for (t, lf) in lsds_net::poisson_link_outages(rng, links, horizon, mtbf, mttr) {
            self.push(t, FaultKind::Link(lf));
        }
        self
    }

    /// The scheduled events, in insertion order (the engine orders them by
    /// time when they are scheduled).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_builders_pair_events() {
        let mut s = FaultSchedule::new();
        s.link_outage(LinkId(0), 100.0, 50.0)
            .site_outage(SiteId(2), 200.0, 25.0)
            .degrade(LinkId(1), 10.0, 5.0, 0.25);
        assert_eq!(s.len(), 6);
        assert_eq!(
            s.events()[0].kind,
            FaultKind::Link(LinkFault::Down(LinkId(0)))
        );
        assert_eq!(s.events()[1].at, 150.0);
        assert_eq!(s.events()[2].kind, FaultKind::SiteCrash(SiteId(2)));
        assert_eq!(s.events()[3].kind, FaultKind::SiteRecover(SiteId(2)));
        assert_eq!(
            s.events()[5].kind,
            FaultKind::Link(LinkFault::Degrade {
                link: LinkId(1),
                factor: 1.0
            })
        );
    }

    #[test]
    fn seeded_schedule_reproduces() {
        let build = |seed| {
            let mut rng = SimRng::new(seed).fork(7);
            let mut s = FaultSchedule::new();
            s.poisson_link_outages(&mut rng, &[LinkId(0), LinkId(2)], 1.0e5, 5000.0, 600.0);
            s
        };
        let a = build(3);
        let b = build(3);
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at.to_bits(), y.at.to_bits());
            assert_eq!(x.kind, y.kind);
        }
        assert!(!a.is_empty());
    }
}
