//! Users/Activities: stochastic job-stream generators.
//!
//! "Another set of components model the behavior of the applications and
//! their interaction with users. Such components are the 'Users' or
//! 'Activity' objects which are used to generate data processing jobs
//! based on different scenarios." (§4, MONARC 2)

use crate::job::{JobId, JobSpec};
use crate::replication::FileId;
use lsds_core::Schedule;
#[cfg(test)]
use lsds_core::SimTime;
use lsds_stats::{Dist, SimRng, ZipfTable};

/// Events of an activity generator.
#[derive(Debug, Clone, Copy)]
pub enum ActivityEvent {
    /// Next job submission.
    NextJob,
}

/// A job-generating activity owned by one user.
pub struct Activity {
    /// Submitting user id.
    pub owner: u32,
    /// Inter-submission time distribution.
    pub interarrival: Dist,
    /// CPU work distribution (reference-core seconds).
    pub work: Dist,
    /// Input files per job.
    pub inputs_per_job: u32,
    /// Popularity skew over the file catalog (rank 0 = hottest file).
    pub popularity: Option<ZipfTable>,
    /// Output bytes distribution.
    pub output_bytes: Dist,
    /// Deadline factor: deadline = factor × nominal work (None = no
    /// deadline).
    pub deadline_factor: Option<f64>,
    /// Budget factor: budget = factor × work (None = no budget).
    pub budget_factor: Option<f64>,
    /// Stop after this many jobs (None = unbounded).
    pub limit: Option<u64>,
    rng: SimRng,
    generated: u64,
}

impl Activity {
    /// A compute-only activity: Poisson submissions of jobs with the
    /// given work distribution.
    pub fn compute(owner: u32, mean_interarrival: f64, work: Dist, rng: SimRng) -> Self {
        Activity {
            owner,
            interarrival: Dist::exp_mean(mean_interarrival),
            work,
            inputs_per_job: 0,
            popularity: None,
            output_bytes: Dist::constant(0.0),
            deadline_factor: None,
            budget_factor: None,
            limit: None,
            rng,
            generated: 0,
        }
    }

    /// A data-analysis activity: each job reads `inputs_per_job` files
    /// chosen by Zipf popularity over a catalog of `catalog_size` files.
    pub fn analysis(
        owner: u32,
        mean_interarrival: f64,
        work: Dist,
        inputs_per_job: u32,
        catalog_size: usize,
        zipf_s: f64,
        rng: SimRng,
    ) -> Self {
        Activity {
            owner,
            interarrival: Dist::exp_mean(mean_interarrival),
            work,
            inputs_per_job,
            popularity: Some(ZipfTable::new(catalog_size, zipf_s)),
            output_bytes: Dist::constant(0.0),
            deadline_factor: None,
            budget_factor: None,
            limit: None,
            rng,
            generated: 0,
        }
    }

    /// Caps the number of generated jobs.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Attaches deadline/budget constraints (economy scheduling).
    pub fn with_economy(mut self, deadline_factor: f64, budget_factor: f64) -> Self {
        self.deadline_factor = Some(deadline_factor);
        self.budget_factor = Some(budget_factor);
        self
    }

    /// Jobs generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Schedules the first submission.
    pub fn prime(&mut self, sched: &mut impl Schedule<ActivityEvent>) {
        if self.limit == Some(0) {
            return;
        }
        let dt = self.interarrival.sample(&mut self.rng);
        sched.schedule_in(dt, ActivityEvent::NextJob);
    }

    /// Handles a submission tick: emits the job and schedules the next
    /// one (unless the limit is reached).
    pub fn handle(
        &mut self,
        _ev: ActivityEvent,
        job_id: u64,
        sched: &mut impl Schedule<ActivityEvent>,
    ) -> JobSpec {
        let now = sched.now();
        let work = self.work.sample_at_least(&mut self.rng, 1e-9);
        let inputs: Vec<FileId> = match &self.popularity {
            Some(z) => {
                let mut v = Vec::with_capacity(self.inputs_per_job as usize);
                for _ in 0..self.inputs_per_job {
                    v.push(FileId(z.sample(&mut self.rng) as u64));
                }
                v.sort_unstable();
                v.dedup();
                v
            }
            None => Vec::new(),
        };
        let output_bytes = self.output_bytes.sample_at_least(&mut self.rng, 0.0);
        let spec = JobSpec {
            id: JobId(job_id),
            owner: self.owner,
            work,
            inputs,
            output_bytes,
            submitted: now,
            deadline: self.deadline_factor.map(|f| f * work),
            budget: self.budget_factor.map(|f| f * work),
        };
        self.generated += 1;
        if self.limit.is_none_or(|l| self.generated < l) {
            let dt = self.interarrival.sample(&mut self.rng);
            sched.schedule_in(dt, ActivityEvent::NextJob);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collect {
        now: SimTime,
        scheduled: Vec<SimTime>,
    }
    impl Schedule<ActivityEvent> for Collect {
        fn now(&self) -> SimTime {
            self.now
        }
        fn schedule_at(&mut self, t: SimTime, _e: ActivityEvent) {
            self.scheduled.push(t);
        }
    }

    #[test]
    fn generates_until_limit() {
        let mut a = Activity::compute(0, 1.0, Dist::constant(5.0), SimRng::new(1)).with_limit(3);
        let mut s = Collect {
            now: SimTime::ZERO,
            scheduled: vec![],
        };
        a.prime(&mut s);
        assert_eq!(s.scheduled.len(), 1);
        for id in 0..3 {
            let job = a.handle(ActivityEvent::NextJob, id, &mut s);
            assert_eq!(job.owner, 0);
            assert_eq!(job.work, 5.0);
        }
        // after the third job no further tick was scheduled
        assert_eq!(s.scheduled.len(), 3);
        assert_eq!(a.generated(), 3);
    }

    #[test]
    fn analysis_jobs_reference_catalog_files() {
        let mut a = Activity::analysis(1, 1.0, Dist::constant(1.0), 3, 50, 1.0, SimRng::new(2));
        let mut s = Collect {
            now: SimTime::ZERO,
            scheduled: vec![],
        };
        a.prime(&mut s);
        let job = a.handle(ActivityEvent::NextJob, 0, &mut s);
        assert!(!job.inputs.is_empty() && job.inputs.len() <= 3);
        for f in &job.inputs {
            assert!(f.0 < 50);
        }
        // sorted + deduped
        assert!(job.inputs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn economy_fields_attached() {
        let mut a =
            Activity::compute(0, 1.0, Dist::constant(10.0), SimRng::new(3)).with_economy(3.0, 2.0);
        let mut s = Collect {
            now: SimTime::new(5.0),
            scheduled: vec![],
        };
        a.prime(&mut s);
        let job = a.handle(ActivityEvent::NextJob, 0, &mut s);
        assert_eq!(job.deadline, Some(30.0));
        assert_eq!(job.budget, Some(20.0));
        assert_eq!(job.submitted, SimTime::new(5.0));
    }

    #[test]
    fn popular_files_dominate() {
        let mut a = Activity::analysis(0, 1.0, Dist::constant(1.0), 1, 100, 1.2, SimRng::new(4));
        let mut s = Collect {
            now: SimTime::ZERO,
            scheduled: vec![],
        };
        a.prime(&mut s);
        let mut rank0 = 0;
        for id in 0..2000 {
            let job = a.handle(ActivityEvent::NextJob, id, &mut s);
            if job.inputs.first() == Some(&FileId(0)) {
                rank0 += 1;
            }
        }
        // rank 0 should be far above uniform (1%)
        assert!(rank0 > 200, "rank0 drawn {rank0} times");
    }
}
