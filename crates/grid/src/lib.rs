//! `lsds-grid` — the Grid substrate: hosts, middleware, and applications.
//!
//! Implements the remaining three component layers of the taxonomy's
//! four-layer decomposition (§3): hosts, middleware, and user applications
//! (the network layer is `lsds-net`):
//!
//! * **Hosts** — [`cpu::CpuFarm`] (time-shared and space-shared processing,
//!   as GridSim distinguishes), [`storage::StorageElement`] disks,
//!   [`storage::MassStorage`] tape silos and [`storage::DbServer`] database
//!   servers, grouped into [`site::Site`] regional centers — "the largest
//!   one is the regional center, which contains a farm of processing nodes
//!   (CPU units), database servers and mass storage units" (§4, MONARC 2).
//!   Sites are organized per [`organization`]: the Bricks "central model"
//!   or the MONARC "tier model".
//! * **Middleware** — [`scheduler`] policies (FIFO/least-loaded brokers,
//!   SJF, fair-share, GridSim-style deadline-and-budget economy,
//!   ChicagoSim-style data-aware placement) and [`replication`] strategies
//!   (OptorSim-style pull with LRU/LFU/economic eviction, ChicagoSim-style
//!   push, and a MONARC-style T0→T1 replication agent).
//! * **Applications** — [`activity::Activity`] generators: "'Users' or
//!   'Activity' objects which are used to generate data processing jobs
//!   based on different scenarios" (§4).
//!
//! [`model::GridModel`] wires all of it over a fluid network into one
//! engine-runnable model; the six simulator facades in `lsds-simulators`
//! are configurations of it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod activity;
pub mod cpu;
pub mod fault;
pub mod job;
pub mod model;
pub mod organization;
pub mod replication;
pub mod scheduler;
pub mod site;
pub mod storage;

pub use activity::Activity;
pub use cpu::{CpuEvent, CpuFarm, Sharing};
pub use fault::{FaultEvent, FaultKind, FaultSchedule};
pub use job::{JobId, JobRecord, JobSpec};
pub use model::{GridConfig, GridEvent, GridModel, GridReport};
pub use organization::Organization;
pub use replication::{FileCatalog, FileId, ReplicationPolicy};
pub use scheduler::{Placement, SchedulerPolicy};
pub use site::{Site, SiteId};
