//! Middleware scheduling/brokering policies.
//!
//! The taxonomy's middleware layer "describes components such as
//! schedulers" and "analyses how the middleware system schedules the jobs
//! for execution inside a Grid system" (§3). The surveyed designs map to
//! the policies here:
//!
//! * [`FixedSite`] — Bricks' central model: everything runs at the server.
//! * [`RandomSite`] / [`RoundRobin`] / [`LeastLoaded`] — the baseline
//!   broker policies SimGrid-class studies compare against.
//! * [`Economy`] — GridSim's computational economy: deadline and budget
//!   constrained cost/time optimization across priced resources.
//! * [`DataAware`] — ChicagoSim: "scheduling strategies in conjunction
//!   with data location"; jobs go where their data (mostly) is.

use crate::job::JobSpec;
use crate::site::SiteId;
use lsds_core::SimTime;
use lsds_stats::SimRng;

/// Per-site state snapshot offered to policies.
#[derive(Debug, Clone, Copy)]
pub struct SiteSnapshot {
    /// The site.
    pub id: SiteId,
    /// Whether the grid's organization allows placing jobs here.
    pub eligible: bool,
    /// Cores in the farm.
    pub cores: usize,
    /// Per-core speed.
    pub speed: f64,
    /// Jobs executing.
    pub running: usize,
    /// Jobs waiting locally.
    pub queued: usize,
    /// Price per reference-CPU-second.
    pub price: f64,
    /// Tier level.
    pub tier: u8,
}

impl SiteSnapshot {
    /// Jobs in system per unit capacity.
    pub fn load(&self) -> f64 {
        (self.running + self.queued) as f64 / (self.cores as f64 * self.speed)
    }

    /// Rough completion estimate for an additional job of `work`:
    /// current backlog drained at full capacity, plus the job itself.
    pub fn completion_estimate(&self, work: f64, backlog_work_guess: f64) -> f64 {
        let capacity = self.cores as f64 * self.speed;
        let backlog = (self.running + self.queued) as f64 * backlog_work_guess;
        backlog / capacity + work / self.speed
    }
}

/// Everything a policy may consult.
pub struct PlacementView<'a> {
    /// Site snapshots (indexed by `SiteId`).
    pub sites: &'a [SiteSnapshot],
    /// Bytes of the job's inputs *missing* at each site.
    pub missing_bytes: &'a [f64],
    /// Current time.
    pub now: SimTime,
}

impl<'a> PlacementView<'a> {
    fn eligible(&self) -> impl Iterator<Item = &SiteSnapshot> {
        self.sites.iter().filter(|s| s.eligible)
    }
}

/// A placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Run at this site.
    Site(SiteId),
    /// No feasible site *for this job* (economy policies under
    /// deadline/budget): the job is dropped with a rejection record.
    Reject,
    /// No site is currently available at all (e.g. every eligible site
    /// crashed): the grid queues the job and re-offers it later rather
    /// than aborting the run.
    Defer,
}

/// A site-selection (brokering) policy.
pub trait SchedulerPolicy: Send {
    /// Display name for experiment tables.
    fn name(&self) -> &'static str;
    /// Chooses where `job` runs.
    fn select(&mut self, job: &JobSpec, view: &PlacementView<'_>) -> Placement;
}

/// Everything to one fixed site (the Bricks central server).
pub struct FixedSite(pub SiteId);

impl SchedulerPolicy for FixedSite {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn select(&mut self, _job: &JobSpec, _view: &PlacementView<'_>) -> Placement {
        Placement::Site(self.0)
    }
}

/// Uniformly random eligible site.
pub struct RandomSite(pub SimRng);

impl SchedulerPolicy for RandomSite {
    fn name(&self) -> &'static str {
        "random"
    }
    fn select(&mut self, _job: &JobSpec, view: &PlacementView<'_>) -> Placement {
        let eligible: Vec<SiteId> = view.eligible().map(|s| s.id).collect();
        if eligible.is_empty() {
            return Placement::Defer;
        }
        Placement::Site(*self.0.choose(&eligible))
    }
}

/// Cycles through eligible sites.
#[derive(Default)]
pub struct RoundRobin {
    next: usize,
}

impl SchedulerPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn select(&mut self, _job: &JobSpec, view: &PlacementView<'_>) -> Placement {
        let eligible: Vec<SiteId> = view.eligible().map(|s| s.id).collect();
        if eligible.is_empty() {
            return Placement::Defer;
        }
        let site = eligible[self.next % eligible.len()];
        self.next += 1;
        Placement::Site(site)
    }
}

/// Minimum load per capacity; ties to the lower site id.
#[derive(Default)]
pub struct LeastLoaded;

impl SchedulerPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }
    fn select(&mut self, _job: &JobSpec, view: &PlacementView<'_>) -> Placement {
        match view
            .eligible()
            .min_by(|a, b| a.load().total_cmp(&b.load()).then(a.id.cmp(&b.id)))
        {
            Some(best) => Placement::Site(best.id),
            None => Placement::Defer,
        }
    }
}

/// What the economy broker optimizes subject to the other constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EconomyGoal {
    /// Cheapest site that still meets the deadline.
    CostMin,
    /// Fastest site that still fits the budget.
    TimeMin,
}

/// GridSim-style deadline-and-budget-constrained broker.
///
/// Time estimates use the site's backlog scaled by `backlog_work_guess`
/// (the broker does not know queued jobs' true sizes — GridSim brokers
/// estimate from historical averages).
pub struct Economy {
    /// Optimization goal.
    pub goal: EconomyGoal,
    /// Assumed work per already-queued job when estimating wait.
    pub backlog_work_guess: f64,
}

impl SchedulerPolicy for Economy {
    fn name(&self) -> &'static str {
        match self.goal {
            EconomyGoal::CostMin => "economy-cost",
            EconomyGoal::TimeMin => "economy-time",
        }
    }

    fn select(&mut self, job: &JobSpec, view: &PlacementView<'_>) -> Placement {
        if view.eligible().next().is_none() {
            // nothing to broker over at all — wait for sites to recover
            // rather than charging the job a deadline/budget rejection
            return Placement::Defer;
        }
        let deadline = job.deadline.unwrap_or(f64::INFINITY);
        let budget = job.budget.unwrap_or(f64::INFINITY);
        let mut best: Option<(f64, SiteId)> = None;
        for s in view.eligible() {
            let t = s.completion_estimate(job.work, self.backlog_work_guess);
            let cost = s.price * job.work;
            if t > deadline || cost > budget {
                continue;
            }
            let objective = match self.goal {
                EconomyGoal::CostMin => cost,
                EconomyGoal::TimeMin => t,
            };
            if best.is_none_or(|(b, bid)| objective < b || (objective == b && s.id < bid)) {
                best = Some((objective, s.id));
            }
        }
        match best {
            Some((_, id)) => Placement::Site(id),
            None => Placement::Reject,
        }
    }
}

/// ChicagoSim-style data-aware placement: minimize bytes to move, break
/// ties by load.
#[derive(Default)]
pub struct DataAware;

impl SchedulerPolicy for DataAware {
    fn name(&self) -> &'static str {
        "data-aware"
    }
    fn select(&mut self, _job: &JobSpec, view: &PlacementView<'_>) -> Placement {
        match view.eligible().min_by(|a, b| {
            view.missing_bytes[a.id.0]
                .total_cmp(&view.missing_bytes[b.id.0])
                .then(a.load().total_cmp(&b.load()))
                .then(a.id.cmp(&b.id))
        }) {
            Some(best) => Placement::Site(best.id),
            None => Placement::Defer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(id: usize, running: usize, queued: usize, speed: f64, price: f64) -> SiteSnapshot {
        SiteSnapshot {
            id: SiteId(id),
            eligible: true,
            cores: 4,
            speed,
            running,
            queued,
            price,
            tier: 1,
        }
    }

    fn job(work: f64, deadline: Option<f64>, budget: Option<f64>) -> JobSpec {
        JobSpec {
            id: crate::job::JobId(1),
            owner: 0,
            work,
            inputs: vec![],
            output_bytes: 0.0,
            submitted: SimTime::ZERO,
            deadline,
            budget,
        }
    }

    #[test]
    fn fixed_always_picks_its_site() {
        let mut p = FixedSite(SiteId(2));
        let sites = [snap(0, 0, 0, 1.0, 1.0)];
        let mb = [0.0];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        assert_eq!(
            p.select(&job(1.0, None, None), &view),
            Placement::Site(SiteId(2))
        );
    }

    #[test]
    fn least_loaded_picks_min_load() {
        let mut p = LeastLoaded;
        let sites = [
            snap(0, 4, 2, 1.0, 1.0),
            snap(1, 1, 0, 1.0, 1.0),
            snap(2, 2, 0, 1.0, 1.0),
        ];
        let mb = [0.0; 3];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        assert_eq!(
            p.select(&job(1.0, None, None), &view),
            Placement::Site(SiteId(1))
        );
    }

    #[test]
    fn least_loaded_ignores_ineligible() {
        let mut p = LeastLoaded;
        let mut idle = snap(0, 0, 0, 1.0, 1.0);
        idle.eligible = false;
        let sites = [idle, snap(1, 3, 3, 1.0, 1.0)];
        let mb = [0.0; 2];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        assert_eq!(
            p.select(&job(1.0, None, None), &view),
            Placement::Site(SiteId(1))
        );
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::default();
        let sites = [snap(0, 0, 0, 1.0, 1.0), snap(1, 0, 0, 1.0, 1.0)];
        let mb = [0.0; 2];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        let j = job(1.0, None, None);
        assert_eq!(p.select(&j, &view), Placement::Site(SiteId(0)));
        assert_eq!(p.select(&j, &view), Placement::Site(SiteId(1)));
        assert_eq!(p.select(&j, &view), Placement::Site(SiteId(0)));
    }

    #[test]
    fn economy_cost_picks_cheapest_feasible() {
        let mut p = Economy {
            goal: EconomyGoal::CostMin,
            backlog_work_guess: 10.0,
        };
        // site0 cheap but slow+busy; site1 pricier but fast
        let sites = [snap(0, 8, 8, 0.5, 1.0), snap(1, 0, 0, 4.0, 3.0)];
        let mb = [0.0; 2];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        // loose deadline: cheapest wins
        assert_eq!(
            p.select(&job(10.0, Some(1.0e6), Some(1.0e6)), &view),
            Placement::Site(SiteId(0))
        );
        // tight deadline: site0 estimate = 16*10/2 + 20 = 100 > 30 → site1
        assert_eq!(
            p.select(&job(10.0, Some(30.0), Some(1.0e6)), &view),
            Placement::Site(SiteId(1))
        );
        // tight deadline + tiny budget: nothing feasible
        assert_eq!(
            p.select(&job(10.0, Some(30.0), Some(5.0)), &view),
            Placement::Reject
        );
    }

    #[test]
    fn economy_time_picks_fastest_within_budget() {
        let mut p = Economy {
            goal: EconomyGoal::TimeMin,
            backlog_work_guess: 0.0,
        };
        let sites = [snap(0, 0, 0, 1.0, 1.0), snap(1, 0, 0, 4.0, 3.0)];
        let mb = [0.0; 2];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        // big budget: fastest (site1)
        assert_eq!(
            p.select(&job(10.0, None, Some(100.0)), &view),
            Placement::Site(SiteId(1))
        );
        // budget 15 < 30 rules out site1 → site0
        assert_eq!(
            p.select(&job(10.0, None, Some(15.0)), &view),
            Placement::Site(SiteId(0))
        );
    }

    #[test]
    fn data_aware_minimizes_movement() {
        let mut p = DataAware;
        let sites = [snap(0, 0, 0, 1.0, 1.0), snap(1, 5, 5, 1.0, 1.0)];
        let mb = [5.0e9, 0.0];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        // site1 is heavily loaded but holds the data
        assert_eq!(
            p.select(&job(1.0, None, None), &view),
            Placement::Site(SiteId(1))
        );
    }

    #[test]
    fn empty_eligible_set_defers_instead_of_panicking() {
        // every policy must degrade gracefully when all sites are down
        let mut down = [snap(0, 0, 0, 1.0, 1.0), snap(1, 0, 0, 1.0, 1.0)];
        for s in &mut down {
            s.eligible = false;
        }
        let mb = [0.0; 2];
        let view = PlacementView {
            sites: &down,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        let j = job(1.0, Some(100.0), Some(100.0));
        let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![
            Box::new(RandomSite(SimRng::new(1))),
            Box::new(RoundRobin::default()),
            Box::new(LeastLoaded),
            Box::new(DataAware),
            Box::new(Economy {
                goal: EconomyGoal::CostMin,
                backlog_work_guess: 1.0,
            }),
        ];
        for p in &mut policies {
            assert_eq!(p.select(&j, &view), Placement::Defer, "{}", p.name());
        }
    }

    #[test]
    fn round_robin_cursor_unmoved_by_deferral() {
        let mut p = RoundRobin::default();
        let sites = [snap(0, 0, 0, 1.0, 1.0), snap(1, 0, 0, 1.0, 1.0)];
        let mut down = sites;
        for s in &mut down {
            s.eligible = false;
        }
        let mb = [0.0; 2];
        let j = job(1.0, None, None);
        let up_view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        let down_view = PlacementView {
            sites: &down,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        assert_eq!(p.select(&j, &up_view), Placement::Site(SiteId(0)));
        assert_eq!(p.select(&j, &down_view), Placement::Defer);
        assert_eq!(
            p.select(&j, &up_view),
            Placement::Site(SiteId(1)),
            "deferral must not advance the cursor"
        );
    }

    #[test]
    fn random_is_deterministic_under_seed() {
        let sites = [snap(0, 0, 0, 1.0, 1.0), snap(1, 0, 0, 1.0, 1.0)];
        let mb = [0.0; 2];
        let view = PlacementView {
            sites: &sites,
            missing_bytes: &mb,
            now: SimTime::ZERO,
        };
        let j = job(1.0, None, None);
        let picks = |seed| {
            let mut p = RandomSite(SimRng::new(seed));
            (0..32).map(|_| p.select(&j, &view)).collect::<Vec<_>>()
        };
        assert_eq!(picks(1), picks(1));
    }
}
