//! The composed Grid model: hosts + network + middleware + applications.
//!
//! `GridModel` is the one place where the four taxonomy layers meet: jobs
//! flow from [`Activity`] generators through a [`SchedulerPolicy`] broker
//! to a [`Site`]'s CPU farm, staging their input files over the fluid
//! network under a [`ReplicationPolicy`]. The six simulator facades in
//! `lsds-simulators` are thin configurations of this model.

use crate::activity::{Activity, ActivityEvent};
use crate::cpu::CpuEvent;
use crate::fault::{FaultKind, FaultSchedule};
use crate::job::{JobId, JobRecord, JobSpec};
use crate::organization::BuiltGrid;
use crate::replication::{FileCatalog, FileId, PushTracker, ReplicationAgent, ReplicationPolicy};
use crate::scheduler::{Placement, PlacementView, SchedulerPolicy, SiteSnapshot};
use crate::site::{Site, SiteId};
use crate::storage::{DbEvent, FileMeta, TapeEvent};
use lsds_core::{Ctx, EventDriven, IdMap, Model, SimTime, Slab};
use lsds_net::{FlowEvent, FlowNet, NodeId, RetryPolicy};
use lsds_obs::{Registry, SpanKind};
use lsds_stats::{Dist, SimRng, Summary};
use std::collections::{HashMap, HashSet, VecDeque};

/// Transfer purposes, encoded in flow tags.
const KIND_STAGE: u64 = 0;
const KIND_PUSH: u64 = 1;
const KIND_AGENT: u64 = 2;

fn tag(kind: u64, a: u64, b: u64) -> u64 {
    assert!(a < (1 << 28) && b < (1 << 28), "tag overflow");
    (kind << 56) | (a << 28) | b
}

fn untag(t: u64) -> (u64, u64, u64) {
    (t >> 56, (t >> 28) & 0xFFF_FFFF, t & 0xFFF_FFFF)
}

/// Dataset production at one site (the LHC "T0" pattern: detector output
/// is registered, stored, and — with an agent — shipped to subscribers).
pub struct Production {
    /// Producing site.
    pub site: SiteId,
    /// Time between produced datasets.
    pub interarrival: Dist,
    /// Dataset size distribution (bytes).
    pub size: Dist,
    /// Stop after this many datasets (None = unbounded).
    pub limit: Option<u64>,
}

/// Full grid scenario configuration.
pub struct GridConfig {
    /// Sites + topology (see [`crate::organization`] builders).
    pub grid: BuiltGrid,
    /// Brokering policy.
    pub policy: Box<dyn SchedulerPolicy>,
    /// Replica management strategy.
    pub replication: ReplicationPolicy,
    /// Job sources.
    pub activities: Vec<Activity>,
    /// Optional dataset production.
    pub production: Option<Production>,
    /// Replication-agent concurrency; `Some(k)` enables the agent with at
    /// most `k` parallel shipments to the producer's subscribers (the
    /// non-producing tier-1 sites, or all other sites in a flat grid).
    pub agent: Option<usize>,
    /// Which sites may execute jobs (defaults: all with >0 real speed).
    pub eligible: Option<Vec<bool>>,
    /// Pre-registered files: `(size, origin)`.
    pub initial_files: Vec<(f64, SiteId)>,
    /// Master seed.
    pub seed: u64,
}

/// Events of the composed model.
pub enum GridEvent {
    /// Model start: primes activities and production.
    Init,
    /// Activity `idx` submits its next job.
    Activity {
        /// Index into the activity table.
        idx: usize,
    },
    /// CPU farm event at a site.
    Cpu {
        /// Site index.
        site: usize,
        /// The farm's event.
        ev: CpuEvent,
    },
    /// An externally injected job submission — the hook for driving the
    /// grid from monitored data (a replayed job-arrival trace) instead of
    /// the built-in generators; see the taxonomy's input-data axis. The
    /// caller must use ids disjoint from generator-produced ones (the
    /// generators count up from 0, so high ids are safe).
    Submit(JobSpec),
    /// Fluid network event.
    Net(FlowEvent),
    /// Mass-storage (tape) event at a site.
    Tape {
        /// Site index.
        site: usize,
        /// The silo's event.
        ev: TapeEvent,
    },
    /// Database-server event at a site.
    Db {
        /// Site index.
        site: usize,
        /// The server's event.
        ev: DbEvent,
    },
    /// Next dataset rolls off production.
    Produce,
    /// An injected fault fires (scheduled at `Init` from the
    /// [`FaultSchedule`]).
    Fault(FaultKind),
    /// Backoff expired for a failed transfer, identified by its flow tag:
    /// re-resolve the source and try again.
    RetryTransfer {
        /// The failed transfer's tag.
        tag: u64,
    },
    /// A transfer attempt failed (its flow aborted, or it could not even
    /// start): count the attempt, then back off or give up. Delivered as
    /// an event so the unwinding never runs inside a caller that is still
    /// mutating job state.
    TransferFailed {
        /// The failed transfer's tag.
        tag: u64,
    },
    /// Re-offer jobs the broker deferred (no site was available).
    RetryDeferred,
    /// Re-submission of a job lost to a site crash or a dead staging
    /// transfer. Unlike [`GridEvent::Submit`], the original submission
    /// time is kept, so the outage shows up in the job's makespan.
    Resubmit(JobSpec),
}

struct PendingJob {
    spec: JobSpec,
    site: SiteId,
    missing: usize,
    staged_bytes: f64,
    pinned: Vec<FileId>,
    /// When staging finished (set when the job enters execution).
    staged: Option<SimTime>,
}

/// Optional MonALISA-style monitoring attached to a [`GridModel`]: per-site
/// CPU and storage occupancy series plus job-state counters. `None` by
/// default; enabling it never feeds back into the simulation (the sampler
/// only reads model state), so monitored and unmonitored runs produce
/// identical job records.
struct GridObs {
    reg: Registry,
    /// Precomputed series keys: `(cpu_running, disk_used)` per site.
    site_keys: Vec<(String, String)>,
}

/// Aggregated outcome of a grid run.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Per-job records.
    pub records: Vec<JobRecord>,
    /// Jobs rejected by the broker (economy infeasibility).
    pub rejected: u64,
    /// Total bytes staged over the WAN.
    pub wan_bytes: f64,
    /// Push replications triggered.
    pub pushes: u64,
    /// Agent shipments completed.
    pub agent_shipped: u64,
    /// Datasets produced.
    pub produced: u64,
    /// Mean job makespan.
    pub mean_makespan: f64,
    /// Mean staging time.
    pub mean_stage_time: f64,
    /// Fraction of deadline-carrying jobs that met their deadline.
    pub deadline_hit_rate: f64,
    /// Total grid-currency spend.
    pub total_cost: f64,
    /// Mass-storage recalls performed.
    pub tape_recalls: u64,
    /// Metadata (database) queries answered.
    pub db_queries: u64,
    /// Site crashes injected.
    pub site_faults: u64,
    /// Jobs re-queued after a site crash or dead staging transfer.
    pub jobs_requeued: u64,
    /// Jobs deferred because no site was available.
    pub jobs_deferred: u64,
    /// Transfer retry attempts issued.
    pub transfer_retries: u64,
    /// Transfers abandoned after exhausting the retry budget.
    pub transfer_failures: u64,
}

/// The composed model. Implements [`Model`], so any engine in
/// `lsds-core` can run it.
pub struct GridModel {
    sites: Vec<Site>,
    eligible: Vec<bool>,
    net: FlowNet,
    catalog: FileCatalog,
    policy: Box<dyn SchedulerPolicy>,
    replication: ReplicationPolicy,
    push_tracker: PushTracker,
    agent: Option<ReplicationAgent>,
    activities: Vec<Activity>,
    production: Option<Production>,
    produced: u64,
    next_job_id: u64,
    /// In-flight jobs, slab-allocated; `pmap` maps the dense monotone job
    /// id to its slot so the per-event lookups are array indexing, not
    /// hashing (the million-job scenarios touch this map twice per job).
    pending: Slab<PendingJob>,
    pmap: IdMap,
    /// In-flight stage transfers: `(file, dst site) → waiting job ids`.
    /// A second job needing the same file at the same site joins the
    /// existing fetch instead of starting a duplicate transfer.
    inflight_fetch: HashMap<(u64, usize), Vec<u64>>,
    /// Files archived on a site's tape (not on its disk): `(file, site)`.
    on_tape: HashSet<(u64, usize)>,
    /// In-flight tape recalls: `(file, holding site) → destination sites
    /// whose WAN transfers start when the recall completes`.
    inflight_recall: HashMap<(u64, usize), Vec<usize>>,
    /// Jobs waiting on a metadata query before staging.
    awaiting_db: HashMap<u64, (JobSpec, SiteId)>,
    tape_recalls: u64,
    db_queries: u64,
    records: Vec<JobRecord>,
    rejected: u64,
    wan_bytes: f64,
    /// Fault events to inject, scheduled at `Init`.
    faults: FaultSchedule,
    /// Transfer retry/backoff knobs.
    retry: RetryPolicy,
    /// Whether each site currently accepts placements (crash state).
    site_up: Vec<bool>,
    /// Failed attempts so far per transfer tag (absent = clean record).
    retry_attempts: HashMap<u64, u32>,
    /// Reused [`FlowNet::handle_into`] completion buffer (empty between
    /// events).
    net_done: Vec<lsds_net::FlowDone>,
    /// Jobs the broker deferred while no site was available.
    deferred: VecDeque<JobSpec>,
    /// Whether a `RetryDeferred` sweep is already scheduled.
    deferred_retry_pending: bool,
    /// Delay before re-offering deferred jobs, seconds.
    defer_retry_delay: f64,
    site_faults: u64,
    transfer_retries: u64,
    transfer_failures: u64,
    jobs_requeued: u64,
    jobs_deferred: u64,
    agent_failed: u64,
    /// Production log: `(file, time)` per produced dataset.
    produced_log: Vec<(u64, f64)>,
    /// Agent shipment log: `(file, destination site, completion time)`.
    agent_log: Vec<(u64, usize, f64)>,
    rng: SimRng,
    monitor: Option<GridObs>,
}

impl GridModel {
    /// Builds the model and an event-driven engine around it, with the
    /// init event already scheduled.
    pub fn build(config: GridConfig) -> EventDriven<GridModel> {
        let model = GridModel::new(config);
        let mut sim = EventDriven::new(model);
        sim.schedule(SimTime::ZERO, GridEvent::Init);
        sim
    }

    /// Builds just the model (for custom engines).
    pub fn new(config: GridConfig) -> Self {
        let GridConfig {
            grid,
            policy,
            replication,
            activities,
            production,
            agent,
            eligible,
            initial_files,
            seed,
        } = config;
        let BuiltGrid {
            mut sites,
            topology,
            parents,
            ..
        } = grid;
        let eligible =
            eligible.unwrap_or_else(|| sites.iter().map(|s| s.cpu.speed() > 1e-3).collect());
        assert_eq!(eligible.len(), sites.len());
        assert!(eligible.iter().any(|&e| e), "no eligible execution sites");
        let net = FlowNet::new(topology);
        let mut catalog = FileCatalog::new();
        for (size, origin) in initial_files {
            let f = catalog.register(size, origin);
            let site = &mut sites[origin.0];
            site.disk.store(f, size, SimTime::ZERO);
            site.disk.pin(f); // origin copies are never evicted
        }
        let agent = agent.map(|k| {
            let producer = production.as_ref().expect("agent requires production").site;
            // subscribers: the producer's children in a tiered grid, or
            // every other eligible site otherwise
            let children: Vec<SiteId> = parents
                .iter()
                .enumerate()
                .filter(|(_, p)| **p == Some(producer))
                .map(|(i, _)| SiteId(i))
                .collect();
            let subs = if children.is_empty() {
                sites
                    .iter()
                    .filter(|s| s.id != producer)
                    .map(|s| s.id)
                    .collect()
            } else {
                children
            };
            ReplicationAgent::new(subs, k)
        });
        let n_sites = sites.len();
        GridModel {
            sites,
            eligible,
            net,
            catalog,
            policy,
            replication,
            push_tracker: PushTracker::new(),
            agent,
            activities,
            production,
            produced: 0,
            next_job_id: 0,
            pending: Slab::new(),
            pmap: IdMap::new(),
            inflight_fetch: HashMap::new(),
            on_tape: HashSet::new(),
            inflight_recall: HashMap::new(),
            awaiting_db: HashMap::new(),
            tape_recalls: 0,
            db_queries: 0,
            records: Vec::new(),
            rejected: 0,
            wan_bytes: 0.0,
            faults: FaultSchedule::new(),
            retry: RetryPolicy::default(),
            site_up: vec![true; n_sites],
            retry_attempts: HashMap::new(),
            net_done: Vec::new(),
            deferred: VecDeque::new(),
            deferred_retry_pending: false,
            defer_retry_delay: 30.0,
            site_faults: 0,
            transfer_retries: 0,
            transfer_failures: 0,
            jobs_requeued: 0,
            jobs_deferred: 0,
            agent_failed: 0,
            produced_log: Vec::new(),
            agent_log: Vec::new(),
            rng: SimRng::new(seed),
            monitor: None,
        }
    }

    /// Turns on monitoring: per-site CPU/storage occupancy series and job
    /// counters accumulate from this point on. Also enables monitoring on
    /// the embedded [`FlowNet`] (link utilization, transfer latencies).
    pub fn enable_monitor(&mut self) {
        let site_keys = (0..self.sites.len())
            .map(|i| {
                (
                    format!("grid.site.{i}.cpu_running"),
                    format!("grid.site.{i}.disk_used"),
                )
            })
            .collect();
        self.monitor = Some(GridObs {
            reg: Registry::new(),
            site_keys,
        });
        self.net.enable_monitor();
    }

    /// The grid monitoring registry, if monitoring is enabled.
    pub fn monitor(&self) -> Option<&Registry> {
        self.monitor.as_ref().map(|m| &m.reg)
    }

    /// Installs the fault schedule for this run. Call before the `Init`
    /// event executes (e.g. right after [`GridModel::build`]); the events
    /// are injected through the engine at their scheduled times.
    pub fn set_faults(&mut self, faults: FaultSchedule) {
        self.faults = faults;
    }

    /// Replaces the transfer retry/backoff policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Sets the delay before deferred jobs are re-offered to the broker.
    pub fn set_defer_retry_delay(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "bad defer retry delay");
        self.defer_retry_delay = dt;
    }

    /// Whether a site currently accepts placements (not crashed).
    pub fn site_is_up(&self, site: SiteId) -> bool {
        self.site_up[site.0]
    }

    /// Jobs re-queued after losing their site or their staging transfers.
    pub fn jobs_requeued(&self) -> u64 {
        self.jobs_requeued
    }

    /// Transfer retry attempts issued so far.
    pub fn transfer_retries(&self) -> u64 {
        self.transfer_retries
    }

    /// Merges grid *and* network metrics into `reg`: job-state counters
    /// and summaries (always available) plus the occupancy/utilization
    /// series accumulated since [`GridModel::enable_monitor`].
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("grid.jobs.completed", self.records.len() as u64);
        reg.inc("grid.jobs.rejected", self.rejected);
        reg.inc("grid.jobs.requeued", self.jobs_requeued);
        reg.inc("grid.jobs.deferred", self.jobs_deferred);
        reg.inc("grid.site_faults", self.site_faults);
        reg.inc("grid.transfer_retries", self.transfer_retries);
        reg.inc("grid.transfer_failures", self.transfer_failures);
        reg.inc("grid.agent_failed", self.agent_failed);
        reg.inc("grid.datasets.produced", self.produced);
        reg.inc("grid.tape_recalls", self.tape_recalls);
        reg.inc("grid.db_queries", self.db_queries);
        reg.set_gauge("grid.jobs.in_flight", self.in_flight() as f64);
        reg.set_gauge("grid.wan_bytes", self.wan_bytes);
        for r in &self.records {
            reg.observe("grid.job.makespan", r.makespan());
            reg.observe("grid.job.stage_time", r.stage_time());
        }
        self.net.export_metrics(reg);
        if let Some(mon) = &self.monitor {
            reg.merge(mon.reg.clone());
        }
    }

    /// Samples every site's occupancy into the monitor's series. No-op
    /// when monitoring is off.
    fn record_site_state(&mut self, now: SimTime) {
        let Some(mon) = self.monitor.as_mut() else {
            return;
        };
        let t = now.seconds();
        for (i, site) in self.sites.iter().enumerate() {
            let (cpu_key, disk_key) = &mon.site_keys[i];
            mon.reg.series_update(cpu_key, t, site.cpu.running() as f64);
            mon.reg.series_update(disk_key, t, site.disk.used());
        }
    }

    /// Immutable site access.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The replica catalog.
    pub fn catalog(&self) -> &FileCatalog {
        &self.catalog
    }

    /// The network.
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Completed job records.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Jobs in flight (awaiting metadata, staging, or executing).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
            + self.awaiting_db.len()
            + self
                .sites
                .iter()
                .map(|s| s.cpu.running() + s.cpu.queued())
                .sum::<usize>()
    }

    /// Datasets produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// The replication agent, if enabled.
    pub fn agent(&self) -> Option<&ReplicationAgent> {
        self.agent.as_ref()
    }

    /// Production log: `(file id, production time)` per dataset.
    pub fn produced_log(&self) -> &[(u64, f64)] {
        &self.produced_log
    }

    /// Agent shipment log: `(file id, destination site, completion time)`.
    pub fn agent_log(&self) -> &[(u64, usize, f64)] {
        &self.agent_log
    }

    /// Pre-places a replica of an already-registered file at `site`
    /// (what a replication agent achieves ahead of time). Call before
    /// running; panics if the disk cannot hold it.
    pub fn prestage_replica(&mut self, file: FileId, site: SiteId) {
        let size = self.catalog.size(file);
        if self.sites[site.0].disk.has(file) {
            return;
        }
        self.sites[site.0].disk.store(file, size, SimTime::ZERO);
        self.catalog.add_replica(file, site);
    }

    /// Aggregate report.
    pub fn report(&self) -> GridReport {
        let mut makespan = Summary::new();
        let mut stage = Summary::new();
        let mut cost = 0.0;
        let mut with_deadline = 0u64;
        let mut met = 0u64;
        for r in &self.records {
            makespan.add(r.makespan());
            stage.add(r.stage_time());
            cost += r.cost;
            if r.deadline_met {
                met += 1;
            }
            with_deadline += 1;
        }
        GridReport {
            records: self.records.clone(),
            rejected: self.rejected,
            wan_bytes: self.wan_bytes,
            pushes: self.push_tracker.pushes(),
            agent_shipped: self.agent.as_ref().map_or(0, |a| a.shipped()),
            produced: self.produced,
            mean_makespan: makespan.mean(),
            mean_stage_time: stage.mean(),
            deadline_hit_rate: if with_deadline == 0 {
                1.0
            } else {
                met as f64 / with_deadline as f64
            },
            total_cost: cost,
            tape_recalls: self.tape_recalls,
            db_queries: self.db_queries,
            site_faults: self.site_faults,
            jobs_requeued: self.jobs_requeued,
            jobs_deferred: self.jobs_deferred,
            transfer_retries: self.transfer_retries,
            transfer_failures: self.transfer_failures,
        }
    }

    /// Registers a file that exists only on `origin`'s tape silo: the
    /// first staging from `origin` recalls it to disk (MONARC's mass
    /// storage units). Call before running; `origin` must have a tape.
    pub fn archive_file(&mut self, size: f64, origin: SiteId) -> FileId {
        assert!(
            self.sites[origin.0].tape.is_some(),
            "archive_file at a site without mass storage"
        );
        let f = self.catalog.register(size, origin);
        self.on_tape.insert((f.0, origin.0));
        f
    }

    fn latency_between(&self, a: SiteId, b: SiteId) -> f64 {
        // served from FlowNet's pairwise route cache: replica-selection
        // scans probe the same (holder, target) pairs over and over
        self.net
            .path_latency(self.sites[a.0].node, self.sites[b.0].node)
            .unwrap_or(f64::INFINITY)
    }

    /// The eviction key for the current pull policy.
    fn eviction_key(&self) -> fn(&FileMeta) -> f64 {
        match self.replication {
            ReplicationPolicy::PullLfu => |m: &FileMeta| m.accesses as f64,
            // LRU is the default order for every other storing policy
            _ => |m: &FileMeta| m.last_access.seconds(),
        }
    }

    /// Stores `file` at `site` if the policy wants a replica and room can
    /// be made; returns true if stored. Evicted replicas leave the
    /// catalog.
    fn try_store_replica(&mut self, file: FileId, site: SiteId, now: SimTime) -> bool {
        let size = self.catalog.size(file);
        if self.sites[site.0].disk.has(file) {
            return true;
        }
        if let ReplicationPolicy::PullEconomic = self.replication {
            // economic veto: do not evict files that have shown reuse
            let candidates = self.sites[site.0]
                .disk
                .evict_candidates(self.eviction_key());
            let mut need = size - self.sites[site.0].disk.free();
            for (id, _) in &candidates {
                if need <= 0.0 {
                    break;
                }
                let m = self.sites[site.0].disk.meta(*id).expect("candidate");
                if m.accesses >= 2 {
                    return false; // victims still valuable
                }
                need -= m.size;
            }
        }
        let key = self.eviction_key();
        match self.sites[site.0].disk.make_room(size, key) {
            Some(evicted) => {
                for ev in evicted {
                    self.catalog.remove_replica(ev, site);
                }
                self.sites[site.0].disk.store(file, size, now);
                self.catalog.add_replica(file, site);
                true
            }
            None => false,
        }
    }

    fn submit_job(&mut self, spec: JobSpec, ctx: &mut Ctx<'_, GridEvent>) {
        // build the broker's view
        let snaps: Vec<SiteSnapshot> = self
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| SiteSnapshot {
                id: s.id,
                eligible: self.eligible[i] && self.site_up[i],
                cores: s.cpu.cores(),
                speed: s.cpu.speed(),
                running: s.cpu.running(),
                queued: s.cpu.queued(),
                price: s.price,
                tier: s.tier,
            })
            .collect();
        let missing_bytes: Vec<f64> = self
            .sites
            .iter()
            .map(|s| {
                spec.inputs
                    .iter()
                    .filter(|f| !s.disk.has(**f))
                    .map(|f| self.catalog.size(*f))
                    .sum()
            })
            .collect();
        let view = PlacementView {
            sites: &snaps,
            missing_bytes: &missing_bytes,
            now: ctx.now(),
        };
        let site = match self.policy.select(&spec, &view) {
            // a policy that ignores the view (e.g. `FixedSite`) can pick
            // a crashed site: hold the job until the site recovers
            Placement::Site(s) if !self.site_up[s.0] => {
                self.defer_job(spec, ctx);
                return;
            }
            Placement::Site(s) => s,
            Placement::Defer => {
                self.defer_job(spec, ctx);
                return;
            }
            Placement::Reject => {
                self.rejected += 1;
                return;
            }
        };

        // a site with a database server answers a metadata query before
        // staging can begin (the MONARC regional-center DB component)
        if self.sites[site.0].db.is_some() {
            self.db_queries += 1;
            let s = site.0;
            let job_id = spec.id.0;
            self.awaiting_db.insert(job_id, (spec, site));
            self.sites[s].db.as_mut().expect("checked above").query(
                job_id,
                &mut ctx.map(move |ev| GridEvent::Db { site: s, ev }),
            );
            return;
        }
        self.begin_staging(spec, site, ctx);
    }

    /// No site can take the job right now: park it and re-offer later
    /// (graceful degradation instead of the broker panicking on an empty
    /// eligible set).
    fn defer_job(&mut self, spec: JobSpec, ctx: &mut Ctx<'_, GridEvent>) {
        self.jobs_deferred += 1;
        self.deferred.push_back(spec);
        self.schedule_deferred_retry(ctx);
    }

    fn schedule_deferred_retry(&mut self, ctx: &mut Ctx<'_, GridEvent>) {
        if self.deferred_retry_pending || self.deferred.is_empty() {
            return;
        }
        self.deferred_retry_pending = true;
        ctx.schedule_in(self.defer_retry_delay, GridEvent::RetryDeferred);
    }

    /// Starts a WAN transfer; when no route currently exists (every path
    /// crosses a down link) the tag goes straight into the retry path.
    fn start_or_retry(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        t: u64,
        ctx: &mut Ctx<'_, GridEvent>,
    ) {
        if self
            .net
            .try_start(src, dst, bytes, t, &mut ctx.map(GridEvent::Net))
            .is_err()
        {
            ctx.schedule_in(0.0, GridEvent::TransferFailed { tag: t });
        }
    }

    /// A transfer attempt on tag `t` failed: back off and retry, or give
    /// up once the policy's budget is spent and unwind the waiting work.
    fn on_transfer_failed(&mut self, t: u64, ctx: &mut Ctx<'_, GridEvent>) {
        let n = {
            let e = self.retry_attempts.entry(t).or_insert(0);
            *e += 1;
            *e
        };
        if n > self.retry.max_retries {
            self.retry_attempts.remove(&t);
            self.transfer_failures += 1;
            self.give_up_transfer(t, ctx);
            return;
        }
        self.transfer_retries += 1;
        ctx.schedule_in(
            self.retry.backoff(n - 1),
            GridEvent::RetryTransfer { tag: t },
        );
    }

    /// The retry budget for tag `t` is exhausted: unwind per kind.
    fn give_up_transfer(&mut self, t: u64, ctx: &mut Ctx<'_, GridEvent>) {
        let (kind, a, b) = untag(t);
        match kind {
            KIND_STAGE => {
                // the waiting jobs will never see this input here:
                // resubmit them so the broker can place them somewhere
                // the file is still reachable from
                if let Some(waiters) = self.inflight_fetch.remove(&(a, b as usize)) {
                    for job in waiters {
                        self.requeue_pending(job, ctx);
                    }
                }
            }
            // a lost push replica is only a missed optimization
            KIND_PUSH => {}
            KIND_AGENT => {
                // free the agent's shipment slot so the remaining
                // subscribers still get served
                self.agent_failed += 1;
                let starts = self
                    .agent
                    .as_mut()
                    .expect("agent transfer without agent")
                    .on_transfer_done();
                self.start_agent_transfers(starts, ctx);
            }
            other => panic!("unknown flow tag kind {other}"),
        }
    }

    /// Pulls a not-yet-finished job out of the pending set and resubmits
    /// it through the broker, keeping its original submission time.
    fn requeue_pending(&mut self, job: u64, ctx: &mut Ctx<'_, GridEvent>) {
        let Some(pj) = self
            .pmap
            .unbind(job)
            .and_then(|slot| self.pending.remove(slot))
        else {
            return;
        };
        for f in &pj.pinned {
            self.sites[pj.site.0].disk.unpin(*f);
        }
        self.jobs_requeued += 1;
        ctx.schedule_in(0.0, GridEvent::Resubmit(pj.spec));
    }

    /// The backoff for tag `t` elapsed: re-resolve a source (topology or
    /// replica placement may have changed) and try again.
    fn on_transfer_retry(&mut self, t: u64, ctx: &mut Ctx<'_, GridEvent>) {
        let (kind, a, b) = untag(t);
        let now = ctx.now();
        match kind {
            KIND_STAGE => {
                let file = FileId(a);
                let site = SiteId(b as usize);
                if !self.inflight_fetch.contains_key(&(file.0, site.0)) {
                    // every waiter was requeued or satisfied meanwhile
                    self.retry_attempts.remove(&t);
                    return;
                }
                if self.sites[site.0].disk.has(file) {
                    // a push/agent shipment landed the file while this
                    // fetch was backing off: the stage is already done
                    self.retry_attempts.remove(&t);
                    self.on_stage_arrived(file, site, 0.0, now, ctx);
                    return;
                }
                let Some(src) = self
                    .catalog
                    .best_source(file, |holder| self.latency_between(holder, site))
                else {
                    self.on_transfer_failed(t, ctx);
                    return;
                };
                let size = self.catalog.size(file);
                self.sites[src.0].disk.touch(file, now);
                let archived =
                    self.on_tape.contains(&(file.0, src.0)) && !self.sites[src.0].disk.has(file);
                if archived {
                    let recall = self.inflight_recall.entry((file.0, src.0)).or_default();
                    if !recall.contains(&site.0) {
                        recall.push(site.0);
                        if recall.len() == 1 {
                            self.tape_recalls += 1;
                            let sidx = src.0;
                            self.sites[sidx]
                                .tape
                                .as_mut()
                                .expect("archived file at a site without tape")
                                .recall(
                                    file.0,
                                    size,
                                    &mut ctx.map(move |ev| GridEvent::Tape { site: sidx, ev }),
                                );
                        }
                    }
                } else {
                    let src_node = self.sites[src.0].node;
                    let dst_node = self.sites[site.0].node;
                    self.start_or_retry(src_node, dst_node, size, t, ctx);
                }
            }
            KIND_PUSH => {
                let file = FileId(a);
                let target = SiteId(b as usize);
                if self.sites[target.0].disk.has(file) {
                    self.retry_attempts.remove(&t);
                    return;
                }
                let Some(src) = self
                    .catalog
                    .best_source(file, |holder| self.latency_between(holder, target))
                else {
                    self.on_transfer_failed(t, ctx);
                    return;
                };
                let size = self.catalog.size(file);
                let src_node = self.sites[src.0].node;
                let dst_node = self.sites[target.0].node;
                self.start_or_retry(src_node, dst_node, size, t, ctx);
            }
            KIND_AGENT => {
                let src = self
                    .production
                    .as_ref()
                    .expect("agent transfer without production")
                    .site;
                let size = self.catalog.size(FileId(a));
                let src_node = self.sites[src.0].node;
                let dst_node = self.sites[b as usize].node;
                self.start_or_retry(src_node, dst_node, size, t, ctx);
            }
            other => panic!("unknown flow tag kind {other}"),
        }
    }

    /// Applies one injected fault.
    fn on_fault(&mut self, kind: FaultKind, ctx: &mut Ctx<'_, GridEvent>) {
        match kind {
            FaultKind::Link(lf) => {
                let outcome = self.net.apply_fault(lf, &mut ctx.map(GridEvent::Net));
                // aborted flows come back sorted by flow id, so the retry
                // schedule is deterministic
                for ab in outcome.aborted {
                    self.on_transfer_failed(ab.tag, ctx);
                }
            }
            FaultKind::SiteCrash(s) => {
                if !self.site_up[s.0] {
                    return;
                }
                self.site_up[s.0] = false;
                self.site_faults += 1;
                // running and queued jobs are lost; their records never
                // formed, so resubmission keeps the original submit time
                // and the outage shows up in makespan
                let lost = self.sites[s.0].cpu.crash(ctx.now());
                for job in lost {
                    self.requeue_pending(job, ctx);
                }
            }
            FaultKind::SiteRecover(s) => {
                self.site_up[s.0] = true;
                self.schedule_deferred_retry(ctx);
            }
        }
    }

    fn begin_staging(&mut self, spec: JobSpec, site: SiteId, ctx: &mut Ctx<'_, GridEvent>) {
        // stage inputs
        let now = ctx.now();
        let mut missing = 0usize;
        let mut pinned = Vec::new();
        let inputs = spec.inputs.clone();
        for f in inputs {
            if self.sites[site.0].disk.has(f) {
                self.sites[site.0].disk.touch(f, now);
                self.sites[site.0].disk.pin(f);
                pinned.push(f);
                continue;
            }
            missing += 1;
            let src = self
                .catalog
                .best_source(f, |holder| self.latency_between(holder, site))
                .unwrap_or_else(|| panic!("file {f:?} has no holder"));
            let src_node = self.sites[src.0].node;
            let size = self.catalog.size(f);
            self.sites[src.0].disk.touch(f, now);
            // join an in-flight fetch of the same file to this site, or
            // start one — replica managers deduplicate concurrent requests
            let waiters = self.inflight_fetch.entry((f.0, site.0)).or_default();
            waiters.push(spec.id.0);
            if waiters.len() == 1 {
                let archived =
                    self.on_tape.contains(&(f.0, src.0)) && !self.sites[src.0].disk.has(f);
                if archived {
                    // the source copy lives on tape: recall it to disk
                    // first, then the WAN transfer(s) start on completion
                    let recall = self.inflight_recall.entry((f.0, src.0)).or_default();
                    recall.push(site.0);
                    if recall.len() == 1 {
                        self.tape_recalls += 1;
                        let sidx = src.0;
                        self.sites[sidx]
                            .tape
                            .as_mut()
                            .expect("archived file at a site without tape")
                            .recall(
                                f.0,
                                size,
                                &mut ctx.map(move |ev| GridEvent::Tape { site: sidx, ev }),
                            );
                    }
                } else {
                    let dst_node = self.sites[site.0].node;
                    self.start_or_retry(
                        src_node,
                        dst_node,
                        size,
                        tag(KIND_STAGE, f.0, site.0 as u64),
                        ctx,
                    );
                }
            }
            // push replication bookkeeping at the holding site
            if let ReplicationPolicy::Push { threshold } = self.replication {
                let catalog = &self.catalog;
                if let Some(target) =
                    self.push_tracker
                        .record_remote_access(f, site, threshold, |s| catalog.holds(f, s))
                {
                    if target != site {
                        let tnode = self.sites[target.0].node;
                        self.start_or_retry(
                            src_node,
                            tnode,
                            size,
                            tag(KIND_PUSH, f.0, target.0 as u64),
                            ctx,
                        );
                    }
                }
            }
        }
        let pj = PendingJob {
            site,
            missing,
            staged_bytes: 0.0,
            pinned,
            spec,
            staged: None,
        };
        if pj.missing == 0 {
            self.start_execution(pj, now, ctx);
        } else {
            let id = pj.spec.id.0;
            let slot = self.pending.insert(pj);
            self.pmap.bind(id, slot);
        }
    }

    fn start_execution(
        &mut self,
        mut pj: PendingJob,
        staged: SimTime,
        ctx: &mut Ctx<'_, GridEvent>,
    ) {
        if !self.site_up[pj.site.0] {
            // the chosen site crashed while inputs were staging: send the
            // job back through the broker
            for f in &pj.pinned {
                self.sites[pj.site.0].disk.unpin(*f);
            }
            self.jobs_requeued += 1;
            ctx.schedule_in(0.0, GridEvent::Resubmit(pj.spec));
            return;
        }
        let site = pj.site.0;
        let id = pj.spec.id;
        let work = pj.spec.work;
        let owner = pj.spec.owner;
        pj.staged = Some(staged);
        // the pending entry lives on (with staging accounting) until the
        // CPU completion builds the job record
        let slot = self.pending.insert(pj);
        self.pmap.bind(id.0, slot);
        self.sites[site].cpu.submit(
            id,
            work,
            owner,
            &mut ctx.map(move |ev| GridEvent::Cpu { site, ev }),
        );
    }

    fn on_flow_done(
        &mut self,
        t: u64,
        bytes: f64,
        finished: SimTime,
        ctx: &mut Ctx<'_, GridEvent>,
    ) {
        // a completion closes the tag's retry record; surface how many
        // attempts the transfer needed
        if let Some(n) = self.retry_attempts.remove(&t) {
            if let Some(mon) = self.monitor.as_mut() {
                mon.reg.observe("grid.transfer.attempts", f64::from(n + 1));
            }
        }
        let (kind, a, b) = untag(t);
        match kind {
            KIND_STAGE => {
                self.wan_bytes += bytes;
                self.on_stage_arrived(FileId(a), SiteId(b as usize), bytes, finished, ctx);
            }
            KIND_PUSH => {
                let file = FileId(a);
                let site = SiteId(b as usize);
                self.wan_bytes += bytes;
                self.try_store_replica_unconditional(file, site, finished);
            }
            KIND_AGENT => {
                let file = FileId(a);
                let site = SiteId(b as usize);
                self.wan_bytes += bytes;
                self.agent_log.push((file.0, site.0, finished.seconds()));
                self.try_store_replica_unconditional(file, site, finished);
                let starts = self
                    .agent
                    .as_mut()
                    .expect("agent transfer without agent")
                    .on_transfer_done();
                self.start_agent_transfers(starts, ctx);
            }
            other => panic!("unknown flow tag kind {other}"),
        }
    }

    /// Store regardless of pull policy (push/agent shipments).
    fn try_store_replica_unconditional(&mut self, file: FileId, site: SiteId, now: SimTime) {
        let size = self.catalog.size(file);
        if self.sites[site.0].disk.has(file) {
            return;
        }
        let key = self.eviction_key();
        if let Some(evicted) = self.sites[site.0].disk.make_room(size, key) {
            for ev in evicted {
                self.catalog.remove_replica(ev, site);
            }
            self.sites[site.0].disk.store(file, size, now);
            self.catalog.add_replica(file, site);
        }
    }

    fn start_agent_transfers(
        &mut self,
        starts: Vec<(FileId, SiteId)>,
        ctx: &mut Ctx<'_, GridEvent>,
    ) {
        for (file, dst) in starts {
            let src = self
                .production
                .as_ref()
                .expect("agent without production")
                .site;
            let size = self.catalog.size(file);
            let src_node = self.sites[src.0].node;
            let dst_node = self.sites[dst.0].node;
            self.start_or_retry(
                src_node,
                dst_node,
                size,
                tag(KIND_AGENT, file.0, dst.0 as u64),
                ctx,
            );
        }
    }

    /// Bytes of `file` became available at `site`: release the waiting
    /// jobs (shared staging accounting) and store a replica per policy.
    fn on_stage_arrived(
        &mut self,
        file: FileId,
        site: SiteId,
        bytes: f64,
        finished: SimTime,
        ctx: &mut Ctx<'_, GridEvent>,
    ) {
        let waiters = self
            .inflight_fetch
            .remove(&(file.0, site.0))
            .expect("stage completion without waiters");
        // store once per arrival, then pin per waiting job
        let stored = self.replication.is_pull() && self.try_store_replica(file, site, finished);
        let share = bytes / waiters.len() as f64;
        for job in waiters {
            let Some(pj) = self.pmap.get(job).and_then(|s| self.pending.get_mut(s)) else {
                continue;
            };
            pj.staged_bytes += share;
            pj.missing -= 1;
            if stored {
                self.sites[site.0].disk.pin(file);
                pj.pinned.push(file);
            }
            if pj.missing == 0 {
                let pj = self
                    .pmap
                    .unbind(job)
                    .and_then(|slot| self.pending.remove(slot))
                    .expect("pending vanished");
                self.start_execution(pj, finished, ctx);
            }
        }
    }

    /// A tape recall finished: cache the file on the holder's disk and
    /// start the WAN transfers that were waiting on it.
    fn on_recall_done(&mut self, file: FileId, holder: SiteId, ctx: &mut Ctx<'_, GridEvent>) {
        let size = self.catalog.size(file);
        let now = ctx.now();
        // disk-cache the recalled copy (pinned: it is the tape master's
        // online image; evicting it would force re-recalls mid-run)
        if !self.sites[holder.0].disk.has(file) {
            let key = self.eviction_key();
            if let Some(evicted) = self.sites[holder.0].disk.make_room(size, key) {
                for ev in evicted {
                    self.catalog.remove_replica(ev, holder);
                }
                self.sites[holder.0].disk.store(file, size, now);
                self.sites[holder.0].disk.pin(file);
            }
        }
        let dsts = self
            .inflight_recall
            .remove(&(file.0, holder.0))
            .expect("recall completion without waiters");
        let src_node = self.sites[holder.0].node;
        for dst in dsts {
            if dst == holder.0 {
                // the job runs at the holding site: the recall itself was
                // the staging — no WAN transfer, no WAN accounting
                self.on_stage_arrived(file, holder, 0.0, now, ctx);
                continue;
            }
            let dst_node = self.sites[dst].node;
            self.start_or_retry(
                src_node,
                dst_node,
                size,
                tag(KIND_STAGE, file.0, dst as u64),
                ctx,
            );
        }
    }

    fn on_cpu_done(
        &mut self,
        site: usize,
        job: JobId,
        started: SimTime,
        ctx: &mut Ctx<'_, GridEvent>,
    ) {
        let pj = self
            .pmap
            .unbind(job.0)
            .and_then(|slot| self.pending.remove(slot))
            .expect("finished job was not pending");
        let staged = pj.staged.expect("finished job has no staged time");
        for f in pj.pinned {
            self.sites[site].disk.unpin(f);
        }
        let spec = pj.spec;
        let finished = ctx.now();
        let cost = self.sites[site].cost_of(spec.work);
        let deadline_met = spec.deadline.is_none_or(|d| finished - spec.submitted <= d);
        // outputs land on the local disk (best effort: evicted-on-demand)
        if spec.output_bytes > 0.0 {
            let key = self.eviction_key();
            if let Some(evicted) = self.sites[site].disk.make_room(spec.output_bytes, key) {
                for ev in evicted {
                    self.catalog.remove_replica(ev, SiteId(site));
                }
                let f = self.catalog.register(spec.output_bytes, SiteId(site));
                self.sites[site].disk.store(f, spec.output_bytes, finished);
            }
        }
        self.records.push(JobRecord {
            id: spec.id,
            owner: spec.owner,
            site: SiteId(site),
            submitted: spec.submitted,
            staged,
            started,
            finished,
            staged_bytes: pj.staged_bytes,
            cost,
            deadline_met,
        });
    }

    fn on_produce(&mut self, ctx: &mut Ctx<'_, GridEvent>) {
        let (site, size, more) = {
            let p = self
                .production
                .as_mut()
                .expect("produce without production");
            let size = p.size.sample_at_least(&mut self.rng, 1.0);
            let more = p.limit.is_none_or(|l| self.produced + 1 < l);
            (p.site, size, more)
        };
        let f = self.catalog.register(size, site);
        self.produced_log.push((f.0, ctx.now().seconds()));
        // origin copy: evict unpinned replicas if needed, then pin
        let key = self.eviction_key();
        match self.sites[site.0].disk.make_room(size, key) {
            Some(evicted) => {
                for ev in evicted {
                    self.catalog.remove_replica(ev, site);
                }
                self.sites[site.0].disk.store(f, size, ctx.now());
                self.sites[site.0].disk.pin(f);
            }
            None => {
                // production outran storage: the dataset exists in the
                // catalog but only virtually; count it as a loss by
                // keeping it unpinned nowhere. Real MONARC runs size T0
                // storage to avoid this; experiments should too.
            }
        }
        self.produced += 1;
        if let Some(agent) = self.agent.as_mut() {
            let starts = agent.on_produced(f);
            self.start_agent_transfers(starts, ctx);
        }
        if more {
            let dt = {
                let p = self.production.as_mut().expect("production vanished");
                p.interarrival.sample_at_least(&mut self.rng, 1e-9)
            };
            ctx.schedule_in(dt, GridEvent::Produce);
        }
    }
}

impl Model for GridModel {
    type Event = GridEvent;

    fn handle(&mut self, event: GridEvent, ctx: &mut Ctx<'_, GridEvent>) {
        match event {
            GridEvent::Init => {
                let faults = std::mem::take(&mut self.faults);
                for ev in faults.events() {
                    ctx.schedule_at(SimTime::new(ev.at), GridEvent::Fault(ev.kind));
                }
                for (i, a) in self.activities.iter_mut().enumerate() {
                    a.prime(&mut ctx.map(move |_| GridEvent::Activity { idx: i }));
                }
                if self.production.is_some() {
                    ctx.schedule_in(0.0, GridEvent::Produce);
                }
            }
            GridEvent::Activity { idx } => {
                let id = self.next_job_id;
                self.next_job_id += 1;
                let spec = self.activities[idx].handle(
                    ActivityEvent::NextJob,
                    id,
                    &mut ctx.map(move |_| GridEvent::Activity { idx }),
                );
                self.submit_job(spec, ctx);
            }
            GridEvent::Submit(mut spec) => {
                // stamp the true submission time: a replayed record's
                // spec was built before the event was delivered
                spec.submitted = ctx.now();
                self.submit_job(spec, ctx);
            }
            GridEvent::Cpu { site, ev } => {
                let dones = self.sites[site]
                    .cpu
                    .handle(ev, &mut ctx.map(move |ev| GridEvent::Cpu { site, ev }));
                for d in dones {
                    self.on_cpu_done(site, d.job, d.started, ctx);
                }
            }
            GridEvent::Net(fe) => {
                let mut dones = std::mem::take(&mut self.net_done);
                self.net
                    .handle_into(fe, &mut ctx.map(GridEvent::Net), &mut dones);
                for d in dones.drain(..) {
                    self.on_flow_done(d.tag, d.bytes, d.finished, ctx);
                }
                self.net_done = dones;
            }
            GridEvent::Tape { site, ev } => {
                let file = self.sites[site]
                    .tape
                    .as_mut()
                    .expect("tape event at site without tape")
                    .handle(ev, &mut ctx.map(move |ev| GridEvent::Tape { site, ev }));
                self.on_recall_done(FileId(file), SiteId(site), ctx);
            }
            GridEvent::Db { site, ev } => {
                let job = self.sites[site]
                    .db
                    .as_mut()
                    .expect("db event at site without db")
                    .handle(ev, &mut ctx.map(move |ev| GridEvent::Db { site, ev }));
                let (spec, exec_site) = self
                    .awaiting_db
                    .remove(&job)
                    .expect("db answer for unknown job");
                self.begin_staging(spec, exec_site, ctx);
            }
            GridEvent::Produce => self.on_produce(ctx),
            GridEvent::Fault(kind) => self.on_fault(kind, ctx),
            GridEvent::TransferFailed { tag } => self.on_transfer_failed(tag, ctx),
            GridEvent::RetryTransfer { tag } => self.on_transfer_retry(tag, ctx),
            GridEvent::RetryDeferred => {
                self.deferred_retry_pending = false;
                let batch: Vec<JobSpec> = self.deferred.drain(..).collect();
                for spec in batch {
                    self.submit_job(spec, ctx);
                }
            }
            GridEvent::Resubmit(spec) => self.submit_job(spec, ctx),
        }
        self.record_site_state(ctx.now());
    }

    fn trace_kind(&self, event: &GridEvent) -> SpanKind {
        match event {
            GridEvent::Init => SpanKind::new("grid.init"),
            GridEvent::Activity { idx } => SpanKind::tagged("grid.activity", *idx as u64),
            GridEvent::Cpu { .. } => SpanKind::new("grid.cpu"),
            GridEvent::Submit(spec) => SpanKind::tagged("grid.submit", spec.id.0),
            GridEvent::Net(fe) => fe.span_kind(),
            GridEvent::Tape { .. } => SpanKind::new("grid.tape"),
            GridEvent::Db { .. } => SpanKind::new("grid.db"),
            GridEvent::Produce => SpanKind::new("grid.produce"),
            GridEvent::Fault(_) => SpanKind::new("grid.fault"),
            GridEvent::RetryTransfer { tag } => SpanKind::tagged("grid.retry_transfer", *tag),
            GridEvent::TransferFailed { tag } => SpanKind::tagged("grid.transfer_failed", *tag),
            GridEvent::RetryDeferred => SpanKind::new("grid.retry_deferred"),
            GridEvent::Resubmit(spec) => SpanKind::tagged("grid.resubmit", spec.id.0),
        }
    }

    fn trace_track(&self, event: &GridEvent) -> u32 {
        // Site-local events trace onto that site's track; grid-wide events
        // (brokering, network, production) share track 0.
        match event {
            GridEvent::Cpu { site, .. }
            | GridEvent::Tape { site, .. }
            | GridEvent::Db { site, .. } => *site as u32,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::{flat_grid, tiered_grid, SiteSpec};
    use crate::scheduler::{DataAware, LeastLoaded};
    use lsds_net::mbps;

    fn flat(n: usize) -> BuiltGrid {
        flat_grid(vec![SiteSpec::default(); n], mbps(800.0), 0.005)
    }

    fn run_compute_only(seed: u64) -> GridReport {
        let cfg = GridConfig {
            grid: flat(4),
            policy: Box::new(LeastLoaded),
            replication: ReplicationPolicy::None,
            activities: vec![
                Activity::compute(0, 2.0, Dist::exp_mean(30.0), SimRng::new(seed)).with_limit(50),
            ],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(100_000.0));
        sim.model().report()
    }

    #[test]
    fn compute_only_jobs_complete() {
        let rep = run_compute_only(1);
        assert_eq!(rep.records.len(), 50);
        assert_eq!(rep.rejected, 0);
        assert_eq!(rep.wan_bytes, 0.0);
        assert!(rep.mean_makespan > 0.0);
        for r in &rep.records {
            assert!(r.finished >= r.started);
            assert!(r.started >= r.staged);
            assert!(r.staged >= r.submitted);
        }
    }

    #[test]
    fn deterministic_repetition() {
        let a = run_compute_only(7);
        let b = run_compute_only(7);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.mean_makespan, b.mean_makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.finished, y.finished);
            assert_eq!(x.site, y.site);
        }
    }

    #[test]
    fn different_seed_different_results() {
        let a = run_compute_only(7);
        let b = run_compute_only(8);
        assert_ne!(a.mean_makespan, b.mean_makespan);
    }

    fn data_cfg(policy: ReplicationPolicy, seed: u64) -> GridConfig {
        // 10 files of 1 GB at site 0; analysis jobs run data-aware
        let grid = flat(4);
        let initial_files: Vec<(f64, SiteId)> = (0..10).map(|_| (1.0e9, SiteId(0))).collect();
        GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            replication: policy,
            activities: vec![Activity::analysis(
                0,
                5.0,
                Dist::exp_mean(20.0),
                2,
                10,
                1.0,
                SimRng::new(seed),
            )
            .with_limit(60)],
            production: None,
            agent: None,
            eligible: None,
            initial_files,
            seed,
        }
    }

    #[test]
    fn staging_moves_bytes_and_pull_creates_replicas() {
        let mut sim = GridModel::build(data_cfg(ReplicationPolicy::PullLru, 3));
        sim.run_until(SimTime::new(1.0e6));
        let m = sim.model();
        let rep = m.report();
        assert_eq!(rep.records.len(), 60);
        assert!(rep.wan_bytes > 0.0, "some staging must have happened");
        // pull replication: at least one file now has more than one holder
        let replicated = (0..10).any(|f| m.catalog().holders(FileId(f)).count() > 1);
        assert!(replicated, "pull policy must create replicas");
        assert!(rep.mean_stage_time > 0.0);
    }

    #[test]
    fn no_replication_streams_every_time() {
        let mut sim = GridModel::build(data_cfg(ReplicationPolicy::None, 3));
        sim.run_until(SimTime::new(1.0e6));
        let m = sim.model();
        assert_eq!(m.report().records.len(), 60);
        for f in 0..10 {
            assert_eq!(
                m.catalog().holders(FileId(f)).count(),
                1,
                "no replicas under ReplicationPolicy::None"
            );
        }
    }

    #[test]
    fn replication_reduces_wan_traffic() {
        // pin execution to one remote site so replica reuse is guaranteed
        // (a load balancer would otherwise scatter jobs away from fresh
        // replicas — which is itself the point of the E7/E8 experiments)
        let remote_only = Some(vec![false, true, false, false]);
        let mut cfg_none = data_cfg(ReplicationPolicy::None, 9);
        cfg_none.eligible = remote_only.clone();
        let mut cfg_lru = data_cfg(ReplicationPolicy::PullLru, 9);
        cfg_lru.eligible = remote_only;
        let mut none = GridModel::build(cfg_none);
        none.run_until(SimTime::new(1.0e6));
        let mut lru = GridModel::build(cfg_lru);
        lru.run_until(SimTime::new(1.0e6));
        let wn = none.model().report().wan_bytes;
        let wl = lru.model().report().wan_bytes;
        assert!(wl < wn, "replication must save WAN bytes: {wl} vs {wn}");
        // with 10 files of 1 GB, pull staging settles at ≤ 10 GB
        assert!(wl <= 10.0e9 + 1.0, "pull stages each file once: {wl}");
    }

    #[test]
    fn push_replication_triggers() {
        // jobs may not run at the origin, so every access is remote and
        // popularity accumulates at the holding site
        let mut cfg = data_cfg(ReplicationPolicy::Push { threshold: 3 }, 5);
        cfg.policy = Box::new(DataAware);
        cfg.eligible = Some(vec![false, true, true, true]);
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(1.0e6));
        let rep = sim.model().report();
        assert_eq!(rep.records.len(), 60);
        assert!(rep.pushes > 0, "popular files must be pushed");
    }

    #[test]
    fn production_with_agent_ships_to_tier1() {
        let grid = tiered_grid(
            SiteSpec {
                cores: 32,
                disk: 1.0e15,
                ..SiteSpec::default()
            },
            3,
            SiteSpec::default(),
            0,
            SiteSpec::default(),
            mbps(2500.0),
            mbps(622.0),
            0.02,
        );
        let cfg = GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            replication: ReplicationPolicy::None,
            activities: vec![],
            production: Some(Production {
                site: SiteId(0),
                interarrival: Dist::constant(10.0),
                size: Dist::constant(1.0e9),
                limit: Some(20),
            }),
            agent: Some(4),
            eligible: None,
            initial_files: vec![],
            seed: 11,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(1.0e5));
        let m = sim.model();
        assert_eq!(m.produced(), 20);
        // every dataset shipped to all 3 subscribers
        assert_eq!(m.agent().unwrap().shipped(), 60);
        // tier-1 disks hold replicas
        for s in 1..=3 {
            assert!(m.site(SiteId(s)).disk.file_count() > 0);
        }
    }

    #[test]
    fn economy_policy_rejects_infeasible() {
        use crate::scheduler::{Economy, EconomyGoal};
        let grid = flat(2);
        let cfg = GridConfig {
            grid,
            policy: Box::new(Economy {
                goal: EconomyGoal::CostMin,
                backlog_work_guess: 30.0,
            }),
            replication: ReplicationPolicy::None,
            activities: vec![
                Activity::compute(0, 1.0, Dist::constant(100.0), SimRng::new(2))
                    // deadline so tight nothing can meet it once queues form
                    .with_economy(0.001, 1000.0)
                    .with_limit(30),
            ],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed: 2,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(1.0e6));
        let rep = sim.model().report();
        assert_eq!(rep.rejected, 30, "every job infeasible");
        assert!(rep.records.is_empty());
    }

    #[test]
    fn costs_charged_per_site_price() {
        let mut specs = vec![SiteSpec::default(); 2];
        specs[0].price = 2.0;
        specs[1].price = 2.0;
        let grid = flat_grid(specs, mbps(800.0), 0.005);
        let cfg = GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            replication: ReplicationPolicy::None,
            activities: vec![
                Activity::compute(0, 10.0, Dist::constant(50.0), SimRng::new(4)).with_limit(10),
            ],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed: 4,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(1.0e6));
        let rep = sim.model().report();
        assert_eq!(rep.records.len(), 10);
        assert!((rep.total_cost - 10.0 * 50.0 * 2.0).abs() < 1e-6);
    }

    #[test]
    fn tag_roundtrip() {
        let t = tag(KIND_AGENT, 12345, 678);
        assert_eq!(untag(t), (KIND_AGENT, 12345, 678));
    }

    fn tape_cfg(seed: u64) -> GridConfig {
        // site 0: archive (tape, no compute); site 1: compute
        let mut grid = flat(2);
        grid.sites[0].cpu = crate::cpu::CpuFarm::new(
            1,
            1e-6,
            crate::cpu::Sharing::Space,
            crate::cpu::Discipline::Fifo,
        );
        grid.sites[0].tape = Some(crate::storage::MassStorage::new(1, 60.0, 100.0e6));
        GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            replication: ReplicationPolicy::None,
            activities: vec![Activity::analysis(
                0,
                100.0,
                Dist::exp_mean(10.0),
                1,
                4,
                0.8,
                SimRng::new(seed),
            )
            .with_limit(12)],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed,
        }
    }

    #[test]
    fn archived_files_are_recalled_before_staging() {
        let model = GridModel::new(tape_cfg(13));
        let mut sim = lsds_core::EventDriven::new(model);
        // register 4 archived datasets on site 0's tape
        for _ in 0..4 {
            sim.model_mut().archive_file(2.0e9, SiteId(0));
        }
        sim.schedule(SimTime::ZERO, GridEvent::Init);
        sim.run_until(SimTime::new(1.0e7));
        let m = sim.model();
        let rep = m.report();
        assert_eq!(rep.records.len(), 12);
        assert!(rep.tape_recalls > 0, "archived inputs must recall");
        assert!(rep.tape_recalls <= 4, "each file recalled at most once");
        // recalled copies are disk-cached at the archive site
        let cached = (0..4)
            .filter(|&f| m.site(SiteId(0)).disk.has(FileId(f)))
            .count();
        assert_eq!(cached as u64, rep.tape_recalls);
        // tape latency shows up in the first access of each file
        // (mount 60 s + read 20 s); cached accesses stage fast
        let max_stage = rep
            .records
            .iter()
            .map(|r| r.stage_time())
            .fold(0.0f64, f64::max);
        assert!(max_stage >= 80.0, "max stage {max_stage}");
    }

    #[test]
    #[should_panic]
    fn archive_without_tape_panics() {
        let mut model = GridModel::new(data_cfg(ReplicationPolicy::None, 1));
        model.archive_file(1.0e9, SiteId(0));
    }

    #[test]
    fn db_metadata_queries_gate_staging() {
        let mut grid = flat(2);
        // both sites answer metadata queries in 2 s
        for site in &mut grid.sites {
            site.db = Some(crate::storage::DbServer::new(1, 2.0));
        }
        let cfg = GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            replication: ReplicationPolicy::None,
            activities: vec![
                Activity::compute(0, 50.0, Dist::constant(5.0), SimRng::new(3)).with_limit(10),
            ],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed: 3,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(1.0e6));
        let rep = sim.model().report();
        assert_eq!(rep.records.len(), 10);
        assert_eq!(rep.db_queries, 10);
        // every job waited ≥ 2 s on its metadata query before staging
        for r in &rep.records {
            assert!(
                r.stage_time() >= 2.0 - 1e-9,
                "stage {} missing db latency",
                r.stage_time()
            );
        }
    }

    #[test]
    fn sites_without_db_skip_queries() {
        let rep = run_compute_only(6);
        assert_eq!(rep.db_queries, 0);
        assert_eq!(rep.tape_recalls, 0);
    }

    #[test]
    fn monitored_grid_run_is_identical_and_exports_series() {
        let run = |monitored: bool| {
            let mut sim = GridModel::build(data_cfg(ReplicationPolicy::PullLru, 3));
            if monitored {
                sim.model_mut().enable_monitor();
            }
            sim.run_until(SimTime::new(1.0e6));
            sim
        };
        let mon = run(true);
        let plain = run(false);
        let rm = mon.model().report();
        let rp = plain.model().report();
        assert_eq!(rm.records.len(), rp.records.len());
        for (a, b) in rm.records.iter().zip(&rp.records) {
            assert_eq!(a.finished, b.finished, "monitoring perturbed the run");
            assert_eq!(a.site, b.site);
        }

        let mut reg = Registry::new();
        mon.model().export_metrics(&mut reg);
        assert_eq!(reg.counter("grid.jobs.completed"), 60);
        let cpu = reg.series("grid.site.0.cpu_running").unwrap();
        assert!(cpu.max() >= 1.0, "site 0 must have run something");
        assert!(reg.series("grid.site.0.disk_used").is_some());
        assert_eq!(reg.summary("grid.job.makespan").unwrap().count(), 60);
        // network monitoring rides along
        assert!(reg.counter("net.transfers_completed") > 0);
        assert!(reg.summary("net.transfer_latency").is_some());
    }

    /// A data run with the file server's uplink cut mid-run. Staging from
    /// site 0 has exactly one path in the star, so affected transfers
    /// abort and must survive on retry/backoff.
    fn faulty_data_run(seed: u64, faults: FaultSchedule) -> GridReport {
        let mut sim = GridModel::build(data_cfg(ReplicationPolicy::PullLru, seed));
        sim.model_mut().set_faults(faults);
        sim.run_until(SimTime::new(1.0e6));
        sim.model().report()
    }

    #[test]
    fn link_outage_is_survived_via_retries() {
        use lsds_net::LinkId;
        let mut faults = FaultSchedule::new();
        // LinkId(0) is site0 -> hub: the only way out of the file server
        faults.link_outage(LinkId(0), 5.0, 120.0);
        let rep = faulty_data_run(3, faults);
        assert_eq!(rep.records.len(), 60, "all jobs complete after repair");
        assert!(rep.transfer_retries > 0, "outage must force retries");
        assert_eq!(rep.transfer_failures, 0, "retry budget suffices");
        // the outage stalls staging, so jobs take longer than fault-free
        let clean = faulty_data_run(3, FaultSchedule::new());
        assert!(rep.mean_makespan > clean.mean_makespan);
    }

    #[test]
    fn fault_free_schedule_is_bitwise_noop() {
        let a = faulty_data_run(3, FaultSchedule::new());
        let b = {
            let mut sim = GridModel::build(data_cfg(ReplicationPolicy::PullLru, 3));
            sim.run_until(SimTime::new(1.0e6));
            sim.model().report()
        };
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(
                x.finished.seconds().to_bits(),
                y.finished.seconds().to_bits()
            );
        }
    }

    #[test]
    fn faulty_run_is_deterministic() {
        use lsds_net::LinkId;
        let run = || {
            let mut faults = FaultSchedule::new();
            faults
                .link_outage(LinkId(0), 5.0, 120.0)
                .site_outage(SiteId(2), 50.0, 300.0)
                .degrade(LinkId(2), 400.0, 100.0, 0.25);
            faulty_data_run(3, faults)
        };
        let a = run();
        let b = run();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.transfer_retries, b.transfer_retries);
        assert_eq!(a.jobs_requeued, b.jobs_requeued);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(
                x.finished.seconds().to_bits(),
                y.finished.seconds().to_bits()
            );
            assert_eq!(x.staged_bytes.to_bits(), y.staged_bytes.to_bits());
            assert_eq!(x.site, y.site);
        }
    }

    #[test]
    fn site_crash_requeues_jobs_elsewhere() {
        let grid = flat(3);
        let cfg = GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            replication: ReplicationPolicy::None,
            activities: vec![
                Activity::compute(0, 2.0, Dist::exp_mean(50.0), SimRng::new(4)).with_limit(40),
            ],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed: 4,
        };
        let mut sim = GridModel::build(cfg);
        let mut faults = FaultSchedule::new();
        // crash site 1 in the thick of the workload, recover much later
        faults.site_outage(SiteId(1), 20.0, 5000.0);
        sim.model_mut().set_faults(faults);
        sim.run_until(SimTime::new(1.0e6));
        let m = sim.model();
        let rep = m.report();
        assert_eq!(rep.site_faults, 1);
        assert!(rep.jobs_requeued > 0, "crash must have caught jobs");
        assert_eq!(rep.records.len(), 40, "lost jobs finish elsewhere");
        assert!(m.site_is_up(SiteId(1)), "site recovered by run end");
        // requeued jobs kept their submission time, so the detour shows
        for r in &rep.records {
            assert!(r.finished > r.submitted);
        }
    }

    #[test]
    fn all_sites_down_defers_until_recovery() {
        let grid = flat(2);
        let cfg = GridConfig {
            grid,
            policy: Box::new(LeastLoaded),
            replication: ReplicationPolicy::None,
            activities: vec![
                Activity::compute(0, 1.0, Dist::constant(10.0), SimRng::new(5)).with_limit(10),
            ],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed: 5,
        };
        let mut sim = GridModel::build(cfg);
        let mut faults = FaultSchedule::new();
        faults
            .site_outage(SiteId(0), 0.0, 500.0)
            .site_outage(SiteId(1), 0.0, 500.0);
        sim.model_mut().set_faults(faults);
        sim.run_until(SimTime::new(1.0e6));
        let rep = sim.model().report();
        assert!(rep.jobs_deferred > 0, "no site up -> jobs deferred");
        assert_eq!(rep.rejected, 0, "deferral is not rejection");
        assert_eq!(rep.records.len(), 10, "deferred jobs run after recovery");
        // nothing could start before the sites came back
        for r in &rep.records {
            assert!(r.started.seconds() >= 500.0);
        }
    }
}
