//! Jobs — the unit of user work.

use crate::replication::FileId;
use crate::site::SiteId;
use lsds_core::SimTime;

/// Identifier of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// A data-processing job as the surveyed simulators model it: CPU work,
/// input files to stage, output volume, and (for economy scheduling)
/// deadline and budget constraints.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Submitting user (fair-share and economy policies key on this).
    pub owner: u32,
    /// CPU demand in reference-core seconds (actual runtime scales with
    /// the executing farm's speed).
    pub work: f64,
    /// Input files that must be present (or streamed) at the execution
    /// site before the job starts.
    pub inputs: Vec<FileId>,
    /// Bytes written to the execution site's disk on completion.
    pub output_bytes: f64,
    /// Submission time.
    pub submitted: SimTime,
    /// Wall-clock deadline after submission (economy scheduling).
    pub deadline: Option<f64>,
    /// Maximum spend in grid currency units (economy scheduling).
    pub budget: Option<f64>,
}

impl JobSpec {
    /// A minimal compute-only job.
    pub fn compute(id: u64, owner: u32, work: f64, submitted: SimTime) -> Self {
        JobSpec {
            id: JobId(id),
            owner,
            work,
            inputs: Vec::new(),
            output_bytes: 0.0,
            submitted,
            deadline: None,
            budget: None,
        }
    }
}

/// Lifecycle accounting for a finished job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Submitting user.
    pub owner: u32,
    /// Where it executed.
    pub site: SiteId,
    /// Submission time.
    pub submitted: SimTime,
    /// When input staging finished and the job entered the CPU queue.
    pub staged: SimTime,
    /// When it began executing.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Bytes moved over the WAN to stage inputs.
    pub staged_bytes: f64,
    /// Grid-currency cost charged (economy scheduling; 0 otherwise).
    pub cost: f64,
    /// Whether the deadline (if any) was met.
    pub deadline_met: bool,
}

impl JobRecord {
    /// Total sojourn time: submission to completion.
    pub fn makespan(&self) -> f64 {
        self.finished - self.submitted
    }

    /// Time spent staging input data.
    pub fn stage_time(&self) -> f64 {
        self.staged - self.submitted
    }

    /// Time spent waiting in the CPU queue.
    pub fn queue_time(&self) -> f64 {
        self.started - self.staged
    }

    /// Execution time.
    pub fn exec_time(&self) -> f64 {
        self.finished - self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_time_decomposition() {
        let r = JobRecord {
            id: JobId(1),
            owner: 0,
            site: SiteId(0),
            submitted: SimTime::new(10.0),
            staged: SimTime::new(12.0),
            started: SimTime::new(15.0),
            finished: SimTime::new(20.0),
            staged_bytes: 1.0e6,
            cost: 0.0,
            deadline_met: true,
        };
        assert_eq!(r.makespan(), 10.0);
        assert_eq!(r.stage_time(), 2.0);
        assert_eq!(r.queue_time(), 3.0);
        assert_eq!(r.exec_time(), 5.0);
        assert!((r.stage_time() + r.queue_time() + r.exec_time() - r.makespan()).abs() < 1e-12);
    }

    #[test]
    fn compute_job_constructor() {
        let j = JobSpec::compute(5, 2, 100.0, SimTime::new(1.0));
        assert_eq!(j.id, JobId(5));
        assert!(j.inputs.is_empty());
        assert!(j.deadline.is_none());
    }
}
