//! CPU farms: time-shared and space-shared processing resources.
//!
//! GridSim's host model distinguishes "heterogeneous computing resources
//! (both time and space shared)" (§4); both modes live here behind one
//! component interface:
//!
//! * **Space-shared** — each job occupies one core exclusively; excess
//!   jobs wait in a queue ordered by the local [`Discipline`].
//! * **Time-shared** — egalitarian processor sharing: all admitted jobs
//!   run concurrently at `min(speed, cores·speed / n)` each, recomputed
//!   fluidly on every arrival and departure (the Bricks central-server
//!   flavor).

use crate::job::JobId;
use lsds_core::{Schedule, SimTime};
use std::collections::VecDeque;

/// CPU sharing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// One job per core; the rest queue.
    Space,
    /// Processor sharing across all admitted jobs.
    Time,
}

/// Local queue discipline for space-shared farms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First come, first served.
    Fifo,
    /// Shortest job first.
    Sjf,
    /// Pick the job whose owner has consumed the least CPU so far.
    FairShare,
}

/// Events the farm schedules for itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuEvent {
    /// Predicted completion of `job`; stale generations are ignored.
    Finish {
        /// Job key.
        job: u64,
        /// Rate-change generation.
        gen: u64,
    },
}

/// A finished job as reported by the farm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuDone {
    /// The job.
    pub job: JobId,
    /// When it began executing.
    pub started: SimTime,
    /// Its owner.
    pub owner: u32,
}

struct Running {
    work_left: f64,
    rate: f64,
    last_update: SimTime,
    gen: u64,
    started: SimTime,
    owner: u32,
}

struct Waiting {
    job: u64,
    work: f64,
    owner: u32,
    enqueued: SimTime,
}

/// A farm of identical cores.
pub struct CpuFarm {
    cores: usize,
    /// Work units per second per core (relative speed).
    speed: f64,
    sharing: Sharing,
    discipline: Discipline,
    /// Executing jobs, kept sorted ascending by job id. The running set is
    /// scanned in id order on every progress advance and reshare, so a
    /// sorted vec gives those walks for free (no key collection, no sort,
    /// no hashing) and point lookups are a binary search.
    running: Vec<(u64, Running)>,
    queue: VecDeque<Waiting>,
    /// Cumulative CPU-seconds consumed per owner, indexed by owner id
    /// (owners are small dense ids; absent entries read as `0.0`).
    usage: Vec<f64>,
    /// Cumulative busy core-seconds (utilization reporting).
    busy_core_seconds: f64,
    completed: u64,
}

impl CpuFarm {
    /// Creates a farm of `cores` cores of the given `speed`.
    pub fn new(cores: usize, speed: f64, sharing: Sharing, discipline: Discipline) -> Self {
        assert!(cores > 0, "farm needs cores");
        assert!(speed > 0.0 && speed.is_finite(), "bad speed");
        CpuFarm {
            cores,
            speed,
            sharing,
            discipline,
            running: Vec::new(),
            queue: VecDeque::new(),
            usage: Vec::new(),
            busy_core_seconds: 0.0,
            completed: 0,
        }
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Per-core speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Jobs waiting (always 0 for time-shared farms).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Jobs finished so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cumulative busy core-seconds.
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy_core_seconds
    }

    /// An estimate other components use for placement decisions: jobs in
    /// the system per unit of capacity.
    pub fn load(&self) -> f64 {
        (self.running.len() + self.queue.len()) as f64 / (self.cores as f64 * self.speed)
    }

    /// Expected execution seconds for `work` on an idle core.
    pub fn nominal_exec(&self, work: f64) -> f64 {
        work / self.speed
    }

    /// Submits a job with `work` reference-core seconds.
    pub fn submit(
        &mut self,
        job: JobId,
        work: f64,
        owner: u32,
        sched: &mut impl Schedule<CpuEvent>,
    ) {
        assert!(work > 0.0 && work.is_finite(), "bad work");
        match self.sharing {
            Sharing::Space => {
                if self.running.len() < self.cores {
                    self.start(job.0, work, owner, sched.now());
                    self.reschedule_space(job.0, sched);
                } else {
                    self.queue.push_back(Waiting {
                        job: job.0,
                        work,
                        owner,
                        enqueued: sched.now(),
                    });
                }
            }
            Sharing::Time => {
                let now = sched.now();
                self.advance_progress(now);
                self.start(job.0, work, owner, now);
                self.reshare_time(now, sched);
            }
        }
    }

    fn start(&mut self, job: u64, work: f64, owner: u32, now: SimTime) {
        let r = Running {
            work_left: work,
            rate: self.speed,
            last_update: now,
            gen: 0,
            started: now,
            owner,
        };
        match self.running.binary_search_by_key(&job, |&(j, _)| j) {
            Err(pos) => self.running.insert(pos, (job, r)),
            Ok(_) => panic!("job {job} already running"),
        }
    }

    /// Mutable access to a running job by id.
    fn running_mut(&mut self, job: u64) -> Option<&mut Running> {
        let i = self.running.binary_search_by_key(&job, |&(j, _)| j).ok()?;
        Some(&mut self.running[i].1)
    }

    /// Space-shared: completion is deterministic once started.
    fn reschedule_space(&mut self, job: u64, sched: &mut impl Schedule<CpuEvent>) {
        let speed = self.speed;
        let r = self.running_mut(job).expect("job not running");
        r.gen += 1;
        let eta = r.work_left / speed;
        sched.schedule_in(eta, CpuEvent::Finish { job, gen: r.gen });
    }

    /// Time-shared: recompute egalitarian PS rates and reschedule.
    fn reshare_time(&mut self, now: SimTime, sched: &mut impl Schedule<CpuEvent>) {
        let n = self.running.len();
        if n == 0 {
            return;
        }
        let rate = (self.cores as f64 * self.speed / n as f64).min(self.speed);
        // ascending job id (the vec's sort order): determinism
        for (k, r) in self.running.iter_mut() {
            r.rate = rate;
            r.gen += 1;
            let eta = r.work_left / rate;
            sched.schedule_at(
                now.after(eta),
                CpuEvent::Finish {
                    job: *k,
                    gen: r.gen,
                },
            );
        }
    }

    /// Accrues progress (and usage accounting) up to `now`.
    fn advance_progress(&mut self, now: SimTime) {
        // ascending job id (the vec's sort order): the per-owner usage
        // sums feed fair-share decisions, and float accumulation must not
        // depend on storage order
        for (_, r) in self.running.iter_mut() {
            let dt = now - r.last_update;
            if dt > 0.0 {
                let done = (r.rate * dt).min(r.work_left);
                r.work_left -= done;
                let o = r.owner as usize;
                if o >= self.usage.len() {
                    self.usage.resize(o + 1, 0.0);
                }
                self.usage[o] += done / self.speed;
                self.busy_core_seconds += (r.rate / self.speed) * dt;
                r.last_update = now;
            }
        }
    }

    /// Picks the next queued job per the discipline.
    fn dequeue_next(&mut self) -> Option<Waiting> {
        if self.queue.is_empty() {
            return None;
        }
        let idx = match self.discipline {
            Discipline::Fifo => 0,
            Discipline::Sjf => self
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.work.total_cmp(&b.work).then(a.enqueued.cmp(&b.enqueued))
                })
                .map(|(i, _)| i)
                .expect("non-empty queue"),
            Discipline::FairShare => self
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ua = self.usage.get(a.owner as usize).copied().unwrap_or(0.0);
                    let ub = self.usage.get(b.owner as usize).copied().unwrap_or(0.0);
                    ua.total_cmp(&ub).then(a.enqueued.cmp(&b.enqueued))
                })
                .map(|(i, _)| i)
                .expect("non-empty queue"),
        };
        self.queue.remove(idx)
    }

    /// Crashes the farm at `now`: every running and queued job is lost and
    /// its id returned (ascending) so the grid can re-queue it elsewhere.
    /// Work done so far is gone — a resubmitted job starts from zero.
    /// Pending [`CpuEvent::Finish`] events for the lost jobs die on the
    /// existing generation check. The farm itself stays usable (site
    /// recovery is the owner's decision; see the grid model's `site_up`).
    pub fn crash(&mut self, now: SimTime) -> Vec<u64> {
        self.advance_progress(now); // usage/busy accounting stays exact
        let mut lost: Vec<u64> = self.running.iter().map(|&(j, _)| j).collect();
        lost.extend(self.queue.iter().map(|w| w.job));
        lost.sort_unstable();
        self.running.clear();
        self.queue.clear();
        lost
    }

    /// Handles a farm event, returning completions.
    pub fn handle(&mut self, ev: CpuEvent, sched: &mut impl Schedule<CpuEvent>) -> Vec<CpuDone> {
        let CpuEvent::Finish { job, gen } = ev;
        let valid = self
            .running
            .binary_search_by_key(&job, |&(j, _)| j)
            .is_ok_and(|i| self.running[i].1.gen == gen);
        if !valid {
            return Vec::new();
        }
        let now = sched.now();
        self.advance_progress(now);
        let i = self
            .running
            .binary_search_by_key(&job, |&(j, _)| j)
            .expect("validated above");
        let (_, r) = self.running.remove(i);
        debug_assert!(r.work_left <= 1e-6 * self.speed.max(1.0), "early finish");
        self.completed += 1;
        let done = CpuDone {
            job: JobId(job),
            started: r.started,
            owner: r.owner,
        };
        match self.sharing {
            Sharing::Space => {
                if let Some(next) = self.dequeue_next() {
                    self.start(next.job, next.work, next.owner, now);
                    self.reschedule_space(next.job, sched);
                }
            }
            Sharing::Time => {
                self.reshare_time(now, sched);
            }
        }
        vec![done]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsds_core::{Ctx, EventDriven, Model};
    use std::collections::HashMap;

    struct Harness {
        farm: CpuFarm,
        done: Vec<(u64, f64, f64)>, // (job, started, finished)
    }

    enum Ev {
        Submit(u64, f64, u32),
        Cpu(CpuEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Submit(j, w, o) => {
                    self.farm.submit(JobId(j), w, o, &mut ctx.map(Ev::Cpu));
                }
                Ev::Cpu(ce) => {
                    for d in self.farm.handle(ce, &mut ctx.map(Ev::Cpu)) {
                        self.done
                            .push((d.job.0, d.started.seconds(), ctx.now().seconds()));
                    }
                }
            }
        }
    }

    fn run(farm: CpuFarm, submissions: Vec<(f64, u64, f64, u32)>) -> Vec<(u64, f64, f64)> {
        let mut sim = EventDriven::new(Harness { farm, done: vec![] });
        for (t, j, w, o) in submissions {
            sim.schedule(SimTime::new(t), Ev::Submit(j, w, o));
        }
        sim.run();
        sim.into_model().done
    }

    #[test]
    fn space_shared_runs_in_parallel_up_to_cores() {
        let farm = CpuFarm::new(2, 1.0, Sharing::Space, Discipline::Fifo);
        let done = run(
            farm,
            vec![(0.0, 1, 10.0, 0), (0.0, 2, 10.0, 0), (0.0, 3, 10.0, 0)],
        );
        // jobs 1,2 run immediately (finish at 10); job 3 queues until 10,
        // finishes at 20
        let f: HashMap<u64, f64> = done.iter().map(|&(j, _, e)| (j, e)).collect();
        assert_eq!(f[&1], 10.0);
        assert_eq!(f[&2], 10.0);
        assert_eq!(f[&3], 20.0);
    }

    #[test]
    fn crash_loses_jobs_and_invalidates_finish_events() {
        struct CrashHarness {
            farm: CpuFarm,
            done: Vec<u64>,
            lost: Vec<u64>,
        }
        enum CEv {
            Submit(u64, f64),
            Crash,
            Cpu(CpuEvent),
        }
        impl Model for CrashHarness {
            type Event = CEv;
            fn handle(&mut self, ev: CEv, ctx: &mut Ctx<'_, CEv>) {
                match ev {
                    CEv::Submit(j, w) => {
                        self.farm.submit(JobId(j), w, 0, &mut ctx.map(CEv::Cpu));
                    }
                    CEv::Crash => {
                        self.lost = self.farm.crash(ctx.now());
                    }
                    CEv::Cpu(ce) => {
                        for d in self.farm.handle(ce, &mut ctx.map(CEv::Cpu)) {
                            self.done.push(d.job.0);
                        }
                    }
                }
            }
        }
        let mut sim = EventDriven::new(CrashHarness {
            farm: CpuFarm::new(1, 1.0, Sharing::Space, Discipline::Fifo),
            done: vec![],
            lost: vec![],
        });
        // job 1 finishes at t=2; jobs 2 (running) and 3 (queued) are lost
        // at the t=5 crash, and their stale Finish events must be no-ops
        sim.schedule(SimTime::ZERO, CEv::Submit(1, 2.0));
        sim.schedule(SimTime::new(3.0), CEv::Submit(2, 10.0));
        sim.schedule(SimTime::new(4.0), CEv::Submit(3, 10.0));
        sim.schedule(SimTime::new(5.0), CEv::Crash);
        sim.run();
        let m = sim.into_model();
        assert_eq!(m.done, vec![1]);
        assert_eq!(m.lost, vec![2, 3], "running + queued, ascending");
        assert_eq!(m.farm.running(), 0);
        assert_eq!(m.farm.queued(), 0);
        assert_eq!(m.farm.completed(), 1);
        // accounting up to the crash is retained: 2 s (job 1) + 2 s (job 2)
        assert!((m.farm.busy_core_seconds() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sjf_reorders_queue() {
        let farm = CpuFarm::new(1, 1.0, Sharing::Space, Discipline::Sjf);
        let done = run(
            farm,
            vec![
                (0.0, 1, 10.0, 0), // runs first (farm idle)
                (1.0, 2, 5.0, 0),  // queued
                (2.0, 3, 1.0, 0),  // queued, shorter
            ],
        );
        let order: Vec<u64> = done.iter().map(|&(j, ..)| j).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn fairshare_prefers_light_owner() {
        let farm = CpuFarm::new(1, 1.0, Sharing::Space, Discipline::FairShare);
        // owner 0 hogs first; then one job each from owner 0 and owner 1
        // queue — fair share picks owner 1 first
        let done = run(
            farm,
            vec![(0.0, 1, 10.0, 0), (1.0, 2, 5.0, 0), (2.0, 3, 5.0, 1)],
        );
        let order: Vec<u64> = done.iter().map(|&(j, ..)| j).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn time_shared_processor_sharing() {
        let farm = CpuFarm::new(1, 1.0, Sharing::Time, Discipline::Fifo);
        // two equal jobs sharing one core: each runs at 0.5 → finish at 20
        let done = run(farm, vec![(0.0, 1, 10.0, 0), (0.0, 2, 10.0, 0)]);
        for &(_, _, end) in &done {
            assert!((end - 20.0).abs() < 1e-9, "end {end}");
        }
    }

    #[test]
    fn time_shared_departure_speeds_up_rest() {
        let farm = CpuFarm::new(1, 1.0, Sharing::Time, Discipline::Fifo);
        // job1 5s work, job2 10s: share until job1 done at t=10;
        // job2 has 5 left at full speed → done at 15
        let done = run(farm, vec![(0.0, 1, 5.0, 0), (0.0, 2, 10.0, 0)]);
        let f: HashMap<u64, f64> = done.iter().map(|&(j, _, e)| (j, e)).collect();
        assert!((f[&1] - 10.0).abs() < 1e-9);
        assert!((f[&2] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn time_shared_multi_core_caps_per_job_rate() {
        let farm = CpuFarm::new(4, 2.0, Sharing::Time, Discipline::Fifo);
        // 2 jobs on 4 cores: each runs at full per-core speed 2.0
        let done = run(farm, vec![(0.0, 1, 10.0, 0), (0.0, 2, 10.0, 0)]);
        for &(_, _, end) in &done {
            assert!((end - 5.0).abs() < 1e-9, "end {end}");
        }
    }

    #[test]
    fn speed_scales_execution() {
        let farm = CpuFarm::new(1, 4.0, Sharing::Space, Discipline::Fifo);
        let done = run(farm, vec![(0.0, 1, 10.0, 0)]);
        assert!((done[0].2 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_accounting() {
        let mut sim = EventDriven::new(Harness {
            farm: CpuFarm::new(2, 1.0, Sharing::Space, Discipline::Fifo),
            done: vec![],
        });
        sim.schedule(SimTime::ZERO, Ev::Submit(1, 10.0, 0));
        sim.schedule(SimTime::ZERO, Ev::Submit(2, 10.0, 0));
        sim.run();
        // two cores busy for 10 s each
        assert!((sim.model().farm.busy_core_seconds() - 20.0).abs() < 1e-9);
        assert_eq!(sim.model().farm.completed(), 2);
    }

    #[test]
    fn load_metric() {
        let farm = CpuFarm::new(4, 2.0, Sharing::Space, Discipline::Fifo);
        assert_eq!(farm.load(), 0.0);
        assert_eq!(farm.nominal_exec(10.0), 5.0);
    }
}
