//! Data replication: catalog, pull/push strategies, and the MONARC-style
//! replication agent.
//!
//! The paper's survey splits the surveyed tools exactly along these lines:
//! OptorSim "allows for data replication but with a … 'pull' model" driven
//! by replica optimization strategies, ChicagoSim uses "a 'push' model in
//! which, when a site contains a popular data file, it will replicate it
//! to remote sites", and the MONARC LHC study showed "the role of using a
//! data replication agent for the intelligent transferring of the produced
//! data" (§4–§5). All three live here and are raced in E6–E8.

mod agent;
mod push;

pub use agent::ReplicationAgent;
pub use push::PushTracker;

use crate::site::SiteId;
use std::collections::BTreeSet;

/// Identifier of a logical file (dataset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Replica management strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationPolicy {
    /// Stream remote inputs every time; never create replicas.
    None,
    /// Pull: replicate on access, evict least-recently-used.
    PullLru,
    /// Pull: replicate on access, evict least-frequently-used.
    PullLfu,
    /// Pull: replicate only when the new file's access-frequency value
    /// exceeds the victims' (OptorSim's economic model, simplified to
    /// observed access counts as value estimates).
    PullEconomic,
    /// Push: the holding site replicates a file to its heaviest remote
    /// consumer once remote accesses reach `threshold`.
    Push {
        /// Remote accesses required before a push.
        threshold: u64,
    },
}

impl ReplicationPolicy {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicationPolicy::None => "none",
            ReplicationPolicy::PullLru => "pull-lru",
            ReplicationPolicy::PullLfu => "pull-lfu",
            ReplicationPolicy::PullEconomic => "pull-economic",
            ReplicationPolicy::Push { .. } => "push",
        }
    }

    /// Whether this is a pull-family policy (replicate on access).
    pub fn is_pull(&self) -> bool {
        matches!(
            self,
            ReplicationPolicy::PullLru
                | ReplicationPolicy::PullLfu
                | ReplicationPolicy::PullEconomic
        )
    }
}

/// Global replica catalog: which sites hold which files.
#[derive(Debug, Clone, Default)]
pub struct FileCatalog {
    sizes: Vec<f64>,
    locations: Vec<BTreeSet<usize>>,
}

impl FileCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        FileCatalog::default()
    }

    /// Registers a new file of `size` bytes initially held at `origin`.
    pub fn register(&mut self, size: f64, origin: SiteId) -> FileId {
        assert!(size > 0.0, "bad file size");
        self.sizes.push(size);
        let mut set = BTreeSet::new();
        set.insert(origin.0);
        self.locations.push(set);
        FileId(self.sizes.len() as u64 - 1)
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// File size in bytes.
    pub fn size(&self, file: FileId) -> f64 {
        self.sizes[file.0 as usize]
    }

    /// Sites currently holding a replica.
    pub fn holders(&self, file: FileId) -> impl Iterator<Item = SiteId> + '_ {
        self.locations[file.0 as usize].iter().map(|&s| SiteId(s))
    }

    /// Whether `site` holds `file`.
    pub fn holds(&self, file: FileId, site: SiteId) -> bool {
        self.locations[file.0 as usize].contains(&site.0)
    }

    /// Records a new replica.
    pub fn add_replica(&mut self, file: FileId, site: SiteId) {
        self.locations[file.0 as usize].insert(site.0);
    }

    /// Removes a replica. Panics if it would leave the file with no copy.
    pub fn remove_replica(&mut self, file: FileId, site: SiteId) {
        let set = &mut self.locations[file.0 as usize];
        assert!(
            set.len() > 1 || !set.contains(&site.0),
            "removing last replica"
        );
        set.remove(&site.0);
    }

    /// Chooses the best source replica for a consumer: the holder with
    /// minimum `cost(holder)` (typically network latency or hop count).
    pub fn best_source(&self, file: FileId, cost: impl Fn(SiteId) -> f64) -> Option<SiteId> {
        self.holders(file)
            .map(|s| (s, cost(s)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0 .0.cmp(&b.0 .0)))
            .map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = FileCatalog::new();
        let f = c.register(1.0e9, SiteId(0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.size(f), 1.0e9);
        assert!(c.holds(f, SiteId(0)));
        assert!(!c.holds(f, SiteId(1)));
    }

    #[test]
    fn replicas_add_remove() {
        let mut c = FileCatalog::new();
        let f = c.register(100.0, SiteId(0));
        c.add_replica(f, SiteId(2));
        assert_eq!(c.holders(f).count(), 2);
        c.remove_replica(f, SiteId(0));
        assert!(!c.holds(f, SiteId(0)));
        assert!(c.holds(f, SiteId(2)));
    }

    #[test]
    #[should_panic]
    fn cannot_remove_last_replica() {
        let mut c = FileCatalog::new();
        let f = c.register(100.0, SiteId(0));
        c.remove_replica(f, SiteId(0));
    }

    #[test]
    fn best_source_minimizes_cost() {
        let mut c = FileCatalog::new();
        let f = c.register(100.0, SiteId(0));
        c.add_replica(f, SiteId(3));
        c.add_replica(f, SiteId(7));
        let best = c.best_source(f, |s| (s.0 as f64 - 3.0).abs()).unwrap();
        assert_eq!(best, SiteId(3));
    }

    #[test]
    fn best_source_tie_breaks_by_site_id() {
        let mut c = FileCatalog::new();
        let f = c.register(100.0, SiteId(5));
        c.add_replica(f, SiteId(2));
        let best = c.best_source(f, |_| 1.0).unwrap();
        assert_eq!(best, SiteId(2));
    }

    #[test]
    fn policy_names() {
        assert_eq!(ReplicationPolicy::PullLru.name(), "pull-lru");
        assert!(ReplicationPolicy::PullEconomic.is_pull());
        assert!(!ReplicationPolicy::Push { threshold: 3 }.is_pull());
        assert!(!ReplicationPolicy::None.is_pull());
    }
}
