//! Push replication: popularity tracking at the holding site.
//!
//! ChicagoSim's model: "when a site contains a popular data file, it will
//! replicate it to remote sites" (§4). The tracker counts remote accesses
//! per `(file, consumer)`; once a file's remote popularity crosses the
//! threshold, it nominates a push to the heaviest consumer that does not
//! yet hold a replica.

use super::FileId;
use crate::site::SiteId;
use std::collections::BTreeMap;

/// Remote-access popularity tracker for push replication.
///
/// Uses `BTreeMap` so that target selection iterates in key order — the
/// max-by scan below must not depend on hash iteration order.
#[derive(Debug, Clone, Default)]
pub struct PushTracker {
    /// (file, consumer site) → remote access count since last push.
    counts: BTreeMap<(u64, usize), u64>,
    /// file → total remote accesses since last push of that file.
    totals: BTreeMap<u64, u64>,
    pushes: u64,
}

impl PushTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        PushTracker::default()
    }

    /// Pushes triggered so far.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Records a remote access of `file` by `consumer`. If the file's
    /// accumulated remote popularity reaches `threshold`, returns the
    /// consumer to push a replica to (the heaviest accessor for which
    /// `already_holds` is false) and resets the file's counters.
    pub fn record_remote_access(
        &mut self,
        file: FileId,
        consumer: SiteId,
        threshold: u64,
        already_holds: impl Fn(SiteId) -> bool,
    ) -> Option<SiteId> {
        *self.counts.entry((file.0, consumer.0)).or_insert(0) += 1;
        let total = self.totals.entry(file.0).or_insert(0);
        *total += 1;
        if *total < threshold {
            return None;
        }
        // heaviest consumer without a replica; ties broken by site id
        let target = self
            .counts
            .iter()
            .filter(|((f, _), _)| *f == file.0)
            .filter(|((_, s), _)| !already_holds(SiteId(*s)))
            .max_by(|((_, sa), ca), ((_, sb), cb)| ca.cmp(cb).then(sb.cmp(sa)))
            .map(|((_, s), _)| SiteId(*s));
        if target.is_some() {
            // reset the file's popularity window
            self.counts.retain(|(f, _), _| *f != file.0);
            self.totals.remove(&file.0);
            self.pushes += 1;
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_no_push() {
        let mut t = PushTracker::new();
        for _ in 0..2 {
            assert!(t
                .record_remote_access(FileId(1), SiteId(4), 3, |_| false)
                .is_none());
        }
        assert_eq!(t.pushes(), 0);
    }

    #[test]
    fn push_goes_to_heaviest_consumer() {
        let mut t = PushTracker::new();
        t.record_remote_access(FileId(1), SiteId(4), 10, |_| false);
        t.record_remote_access(FileId(1), SiteId(5), 10, |_| false);
        t.record_remote_access(FileId(1), SiteId(5), 10, |_| false);
        for _ in 0..6 {
            t.record_remote_access(FileId(1), SiteId(5), 10, |_| false);
        }
        let target = t.record_remote_access(FileId(1), SiteId(4), 10, |_| false);
        assert_eq!(target, Some(SiteId(5)));
        assert_eq!(t.pushes(), 1);
    }

    #[test]
    fn holder_is_skipped() {
        let mut t = PushTracker::new();
        for _ in 0..4 {
            t.record_remote_access(FileId(2), SiteId(9), 5, |_| false);
        }
        // site 9 already holds it now; the only other accessor is 3
        t.record_remote_access(FileId(2), SiteId(3), 5, |s| s == SiteId(9));
        // threshold hit on that access → target must be 3
        let mut t2 = PushTracker::new();
        for _ in 0..4 {
            t2.record_remote_access(FileId(2), SiteId(9), 5, |_| false);
        }
        let target = t2.record_remote_access(FileId(2), SiteId(3), 5, |s| s == SiteId(9));
        assert_eq!(target, Some(SiteId(3)));
    }

    #[test]
    fn counters_reset_after_push() {
        let mut t = PushTracker::new();
        for _ in 0..2 {
            t.record_remote_access(FileId(1), SiteId(4), 3, |_| false);
        }
        assert!(t
            .record_remote_access(FileId(1), SiteId(4), 3, |_| false)
            .is_some());
        // window reset: takes another 3 accesses to trigger again
        assert!(t
            .record_remote_access(FileId(1), SiteId(4), 3, |_| false)
            .is_none());
    }

    #[test]
    fn all_holders_means_no_push_and_no_reset() {
        let mut t = PushTracker::new();
        for _ in 0..5 {
            let r = t.record_remote_access(FileId(1), SiteId(4), 3, |_| true);
            assert!(r.is_none());
        }
        assert_eq!(t.pushes(), 0);
    }

    #[test]
    fn files_tracked_independently() {
        let mut t = PushTracker::new();
        t.record_remote_access(FileId(1), SiteId(4), 2, |_| false);
        assert!(t
            .record_remote_access(FileId(2), SiteId(4), 2, |_| false)
            .is_none());
        assert!(t
            .record_remote_access(FileId(1), SiteId(4), 2, |_| false)
            .is_some());
    }
}
