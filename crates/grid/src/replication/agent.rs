//! The MONARC-style data replication agent.
//!
//! The LHC study (Legrand 2005, cited in §5) evaluated "the role of using
//! a data replication agent for the intelligent transferring of the
//! produced data": instead of tier-1 centers pulling datasets on first
//! use (stalling analysis jobs behind WAN transfers), an agent at tier-0
//! subscribes the tier-1 centers to the production stream and ships each
//! newly produced dataset immediately. Experiment E6 reproduces the
//! with/without-agent comparison across T0→T1 link capacities.

use super::FileId;
use crate::site::SiteId;
use std::collections::VecDeque;

/// Subscription-based replication agent.
///
/// The agent itself is pure bookkeeping: the owning model asks it what to
/// transfer and performs the transfers on its network. `max_in_flight`
/// models the agent's bounded transfer concurrency per subscriber.
#[derive(Debug, Clone)]
pub struct ReplicationAgent {
    subscribers: Vec<SiteId>,
    /// Pending (file, destination) transfers not yet started.
    backlog: VecDeque<(FileId, SiteId)>,
    /// Transfers currently running per subscriber slot.
    in_flight: usize,
    max_in_flight: usize,
    shipped: u64,
}

impl ReplicationAgent {
    /// Creates an agent shipping to `subscribers`, at most `max_in_flight`
    /// concurrent transfers.
    pub fn new(subscribers: Vec<SiteId>, max_in_flight: usize) -> Self {
        assert!(max_in_flight > 0);
        ReplicationAgent {
            subscribers,
            backlog: VecDeque::new(),
            in_flight: 0,
            max_in_flight,
            shipped: 0,
        }
    }

    /// Subscribed destinations.
    pub fn subscribers(&self) -> &[SiteId] {
        &self.subscribers
    }

    /// Datasets fully shipped (one count per (file, destination) pair).
    pub fn shipped(&self) -> u64 {
        self.shipped
    }

    /// Transfers waiting for a slot.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Transfers currently running.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Announces a newly produced dataset: enqueues one transfer per
    /// subscriber and returns the transfers that may start immediately.
    pub fn on_produced(&mut self, file: FileId) -> Vec<(FileId, SiteId)> {
        for &s in &self.subscribers {
            self.backlog.push_back((file, s));
        }
        self.drain_slots()
    }

    /// Marks one transfer finished and returns transfers that may now
    /// start.
    pub fn on_transfer_done(&mut self) -> Vec<(FileId, SiteId)> {
        assert!(self.in_flight > 0, "completion without transfer");
        self.in_flight -= 1;
        self.shipped += 1;
        self.drain_slots()
    }

    fn drain_slots(&mut self) -> Vec<(FileId, SiteId)> {
        let mut out = Vec::new();
        while self.in_flight < self.max_in_flight {
            match self.backlog.pop_front() {
                Some(x) => {
                    self.in_flight += 1;
                    out.push(x);
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_to_all_subscribers() {
        let mut a = ReplicationAgent::new(vec![SiteId(1), SiteId(2), SiteId(3)], 10);
        let started = a.on_produced(FileId(7));
        assert_eq!(started.len(), 3);
        assert_eq!(a.in_flight(), 3);
        assert_eq!(a.backlog_len(), 0);
    }

    #[test]
    fn bounded_concurrency() {
        let mut a = ReplicationAgent::new(vec![SiteId(1), SiteId(2)], 1);
        let s1 = a.on_produced(FileId(0));
        assert_eq!(s1.len(), 1);
        assert_eq!(a.backlog_len(), 1);
        let s2 = a.on_produced(FileId(1));
        assert!(s2.is_empty(), "slot still busy");
        assert_eq!(a.backlog_len(), 3);
        let s3 = a.on_transfer_done();
        assert_eq!(s3.len(), 1);
        assert_eq!(a.shipped(), 1);
    }

    #[test]
    fn drains_backlog_in_fifo_order() {
        let mut a = ReplicationAgent::new(vec![SiteId(1)], 1);
        a.on_produced(FileId(0));
        a.on_produced(FileId(1));
        a.on_produced(FileId(2));
        let next = a.on_transfer_done();
        assert_eq!(next, vec![(FileId(1), SiteId(1))]);
        let next = a.on_transfer_done();
        assert_eq!(next, vec![(FileId(2), SiteId(1))]);
        assert!(a.on_transfer_done().is_empty());
        assert_eq!(a.shipped(), 3);
    }
}
