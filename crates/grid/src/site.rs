//! Sites (regional centers): the host bundles of the Grid.

use crate::cpu::CpuFarm;
use crate::storage::{DbServer, MassStorage, StorageElement};
use lsds_net::NodeId;

/// Identifier of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub usize);

/// A regional center: CPU farm + disk pool attached to a network node.
///
/// "A first set of components was created for describing the physical
/// resources of the distributed system under simulation. The largest one
/// is the regional center, which contains a farm of processing nodes (CPU
/// units), database servers and mass storage units, as well as one or
/// more local and wide area networks." (§4, MONARC 2)
pub struct Site {
    /// Site id (index into the grid's site table).
    pub id: SiteId,
    /// Human-readable name.
    pub name: String,
    /// Tier level (0 = top of a MONARC-style hierarchy).
    pub tier: u8,
    /// Network attachment point.
    pub node: NodeId,
    /// Processing farm.
    pub cpu: CpuFarm,
    /// Disk pool.
    pub disk: StorageElement,
    /// Optional mass-storage (tape) silo holding archived datasets.
    pub tape: Option<MassStorage>,
    /// Optional database server answering metadata queries before jobs
    /// can stage (the MONARC regional center's "database servers").
    pub db: Option<DbServer>,
    /// Grid-currency price per reference-CPU-second (economy scheduling).
    pub price: f64,
}

impl Site {
    /// Creates a site.
    pub fn new(
        id: SiteId,
        name: impl Into<String>,
        tier: u8,
        node: NodeId,
        cpu: CpuFarm,
        disk: StorageElement,
        price: f64,
    ) -> Self {
        assert!(price >= 0.0, "bad price");
        Site {
            id,
            name: name.into(),
            tier,
            node,
            cpu,
            disk,
            tape: None,
            db: None,
            price,
        }
    }

    /// Attaches a mass-storage silo.
    pub fn with_tape(mut self, tape: MassStorage) -> Self {
        self.tape = Some(tape);
        self
    }

    /// Attaches a database server.
    pub fn with_db(mut self, db: DbServer) -> Self {
        self.db = Some(db);
        self
    }

    /// Cost of running `work` reference-core-seconds here.
    pub fn cost_of(&self, work: f64) -> f64 {
        self.price * work
    }

    /// Nominal (unloaded) runtime of `work` here.
    pub fn nominal_exec(&self, work: f64) -> f64 {
        self.cpu.nominal_exec(work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Discipline, Sharing};

    #[test]
    fn construction_and_costs() {
        let s = Site::new(
            SiteId(1),
            "T1-FR",
            1,
            NodeId(3),
            CpuFarm::new(10, 2.0, Sharing::Space, Discipline::Fifo),
            StorageElement::new(1.0e12),
            0.5,
        );
        assert_eq!(s.id, SiteId(1));
        assert_eq!(s.cost_of(100.0), 50.0);
        assert_eq!(s.nominal_exec(100.0), 50.0);
        assert!(s.tape.is_none() && s.db.is_none());
    }

    #[test]
    fn tape_and_db_builders() {
        use crate::storage::{DbServer, MassStorage};
        let s = Site::new(
            SiteId(0),
            "T0",
            0,
            NodeId(0),
            CpuFarm::new(1, 1.0, Sharing::Space, Discipline::Fifo),
            StorageElement::new(1.0e12),
            1.0,
        )
        .with_tape(MassStorage::new(2, 30.0, 200.0e6))
        .with_db(DbServer::new(4, 0.05));
        assert!(s.tape.is_some());
        assert!(s.db.is_some());
    }
}
