//! Workspace walker, pragma parsing, and finding collection.
//!
//! Suppression pragmas are ordinary comments and **must carry a reason**:
//!
//! ```text
//! // lsds-lint: allow(hot-path-panic) reason="documented panicking wrapper"
//! ```
//!
//! A pragma on a code line suppresses matching findings on that line; a
//! pragma on a comment-only line suppresses them on the next code line. An
//! inner-doc pragma (`//! lsds-lint: allow(…) reason="…"`) applies to the
//! whole file. Malformed pragmas (unknown rule, missing reason) are
//! `bad-pragma` errors, and pragmas that suppress nothing are
//! `unused-pragma` warnings — neither is itself suppressible, so the
//! escape hatch cannot rot silently.

use crate::ast::{self, ParsedFile};
use crate::config::Config;
use crate::lexer::{lex, test_line_ranges, Tok};
use crate::rules::{self, FileCtx, Finding, Severity};
use crate::symbols::{fnv64, FileInput, SymbolTable};
use std::path::Path;

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
struct Pragma {
    rules: Vec<String>,
    /// Line the pragma suppresses (`None` = whole file).
    target: Option<u32>,
    /// Line the pragma itself is written on (for diagnostics).
    at: u32,
    used: bool,
}

/// One file read, lexed, and parsed — ready for the rule passes and for
/// symbol-table construction.
pub struct PreparedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// File context with `test_lines` resolved from the token stream.
    pub ctx: FileCtx,
    /// Raw source (pragma parsing works on text lines).
    pub source: String,
    /// Token stream.
    pub tokens: Vec<Tok>,
    /// Item tree.
    pub parsed: ParsedFile,
}

impl PreparedFile {
    /// Builds a prepared file from in-memory source.
    pub fn from_source(ctx: &FileCtx, source: &str) -> PreparedFile {
        let tokens = lex(source);
        let mut ctx = ctx.clone();
        ctx.test_lines = test_line_ranges(&tokens);
        let parsed = ast::parse(&tokens);
        PreparedFile {
            rel: ctx.rel_path.clone(),
            ctx,
            source: source.to_string(),
            tokens,
            parsed,
        }
    }

    /// The file's view for [`SymbolTable::build`].
    pub fn input(&self) -> FileInput<'_> {
        FileInput {
            ctx: &self.ctx,
            tokens: &self.tokens,
            parsed: &self.parsed,
        }
    }

    /// Content hash of the raw source (incremental-cache key).
    pub fn content_hash(&self) -> u64 {
        fnv64(self.source.as_bytes())
    }
}

/// The whole workspace prepared for scanning: every file plus the
/// cross-file symbol table built from all of them. Scanning a subset of
/// files (incremental mode) still sees whole-workspace trait impls, so a
/// restricted run reports exactly what a full run would for those files.
pub struct Workspace {
    /// Prepared files, sorted by relative path.
    pub files: Vec<PreparedFile>,
    /// Symbol table over all files.
    pub symtab: SymbolTable,
}

/// Reads, lexes, and parses the whole tree under `root` (plus any `extra`
/// paths not caught by the normal walk) and builds the symbol table.
pub fn prepare_workspace(
    root: &Path,
    cfg: &Config,
    extra: &[String],
) -> std::io::Result<Workspace> {
    let mut rels = collect_files(root, cfg)?;
    for e in extra {
        if !rels.contains(e) {
            rels.push(e.clone());
        }
    }
    rels.sort();
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        let source = std::fs::read_to_string(root.join(rel))?;
        let ctx = file_ctx(root, cfg, rel);
        files.push(PreparedFile::from_source(&ctx, &source));
    }
    let inputs: Vec<FileInput<'_>> = files.iter().map(PreparedFile::input).collect();
    let symtab = SymbolTable::build(&inputs);
    Ok(Workspace { files, symtab })
}

impl Workspace {
    /// Scans one prepared file against the workspace symbol table.
    /// Returns `None` when `rel` is not part of the workspace.
    pub fn scan_one(&self, cfg: &Config, rel: &str) -> Option<Vec<Finding>> {
        let pf = self.files.iter().find(|f| f.rel == rel)?;
        Some(scan_prepared(cfg, pf, &self.symtab))
    }

    /// Scans `targets` (or every file when `None`), sorted by file/line.
    pub fn scan(&self, cfg: &Config, targets: Option<&[String]>) -> Vec<Finding> {
        let mut findings = Vec::new();
        for pf in &self.files {
            if targets.is_some_and(|t| !t.iter().any(|x| x == &pf.rel)) {
                continue;
            }
            findings.extend(scan_prepared(cfg, pf, &self.symtab));
        }
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        findings
    }
}

/// Scans one file's source text (already classified by `ctx`), applying
/// pragmas and config severities. The symbol table is built from this
/// file alone — fixture scans and unit tests use this; workspace runs go
/// through [`prepare_workspace`] for cross-file symbols.
pub fn scan_source(cfg: &Config, ctx: &FileCtx, source: &str) -> Vec<Finding> {
    let pf = PreparedFile::from_source(ctx, source);
    let symtab = SymbolTable::build(&[pf.input()]);
    scan_prepared(cfg, &pf, &symtab)
}

/// Runs every pass (token rules, semantic rules, pragmas, config
/// severities) over one prepared file.
fn scan_prepared(cfg: &Config, pf: &PreparedFile, symtab: &SymbolTable) -> Vec<Finding> {
    let ctx = &pf.ctx;
    let source = &pf.source;
    let mut findings = rules::check_file(ctx, &pf.tokens);
    crate::sem::check_sem(ctx, &pf.tokens, &pf.parsed, symtab, &mut findings);
    findings
        .sort_by(|a, b| (a.line, a.rule, a.file.as_str()).cmp(&(b.line, b.rule, b.file.as_str())));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.file == b.file);

    let (mut pragmas, mut pragma_errors) = parse_pragmas(ctx, source);
    findings.retain(|f| {
        for p in pragmas.iter_mut() {
            if p.rules.iter().any(|r| r == f.rule)
                && (p.target.is_none() || p.target == Some(f.line))
            {
                p.used = true;
                return false;
            }
        }
        true
    });
    for p in &pragmas {
        if !p.used {
            pragma_errors.push(Finding {
                rule: "unused-pragma",
                severity: Severity::Warn,
                file: ctx.rel_path.clone(),
                line: p.at,
                message: format!(
                    "allow({}) suppresses nothing; delete the stale pragma",
                    p.rules.join(", ")
                ),
            });
        }
    }
    findings.append(&mut pragma_errors);

    // config severity resolution; Off drops the finding
    findings.retain_mut(|f| {
        // pragma machinery diagnostics keep their built-in severity
        if f.rule != "bad-pragma" && f.rule != "unused-pragma" {
            f.severity = cfg.severity_for(&ctx.crate_name, f.rule);
        }
        f.severity != Severity::Off
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Extracts pragmas from raw source lines. Returns `(pragmas, errors)`.
fn parse_pragmas(ctx: &FileCtx, source: &str) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx as u32 + 1;
        // Pragmas in test regions are inert (no rule fires there), so text
        // that merely *mentions* the syntax — doc examples, test-string
        // literals — cannot produce machinery diagnostics.
        if ctx.in_test(line_no) {
            continue;
        }
        // The marker must START its comment (`// lsds-lint:` or
        // `//! lsds-lint:`); prose that mentions the syntax mid-sentence is
        // not a pragma.
        let Some(comment_pos) = find_pragma_comment(raw) else {
            continue;
        };
        let comment = &raw[comment_pos..];
        let body = comment
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start()
            .trim_start_matches("lsds-lint:")
            .trim();
        let file_wide = comment.starts_with("//!");
        let code_before = raw[..comment_pos].trim();

        match parse_allow(body) {
            Ok((rule_ids, _reason)) => {
                let target = if file_wide {
                    None
                } else if !code_before.is_empty() {
                    Some(line_no)
                } else {
                    // comment-only line: target the next code line
                    let mut t = idx + 1;
                    while t < lines.len() {
                        let s = lines[t].trim();
                        if !s.is_empty() && !s.starts_with("//") {
                            break;
                        }
                        t += 1;
                    }
                    Some(t as u32 + 1)
                };
                pragmas.push(Pragma {
                    rules: rule_ids,
                    target,
                    at: line_no,
                    used: false,
                });
            }
            Err(msg) => errors.push(Finding {
                rule: "bad-pragma",
                severity: Severity::Error,
                file: ctx.rel_path.clone(),
                line: line_no,
                message: msg,
            }),
        }
    }
    (pragmas, errors)
}

/// Finds the byte offset of a `// lsds-lint:` / `//! lsds-lint:` comment
/// opener on this line, requiring the marker to immediately follow the
/// comment slashes.
fn find_pragma_comment(raw: &str) -> Option<usize> {
    // Only the first `//` on the line is considered: a marker deeper in is
    // either inside a comment (a doc example quoting the syntax) or after a
    // string literal containing `//`, and neither should parse as a pragma.
    let pos = raw.find("//")?;
    let after = raw[pos + 2..].strip_prefix('!').unwrap_or(&raw[pos + 2..]);
    if after.trim_start().starts_with("lsds-lint:") {
        Some(pos)
    } else {
        None
    }
}

/// Parses `allow(rule[, rule…]) reason="…"`; the reason is mandatory and
/// must be non-empty.
fn parse_allow(body: &str) -> Result<(Vec<String>, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or("pragma must be `allow(<rule>) reason=\"…\"`")?
        .trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(` after `allow`")?;
    let close = rest.find(')').ok_or("unclosed `allow(`")?;
    let ids: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if ids.is_empty() {
        return Err("allow() names no rules".to_string());
    }
    for id in &ids {
        if !rules::is_known_rule(id) {
            return Err(format!("unknown rule {id:?} in allow(…)"));
        }
        if id == "bad-pragma" || id == "unused-pragma" {
            return Err(format!("{id} cannot be suppressed"));
        }
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix("reason=")
        .and_then(|r| r.trim_start().strip_prefix('"'))
        .and_then(|r| r.find('"').map(|e| r[..e].trim().to_string()))
        .ok_or("pragma requires reason=\"…\"")?;
    if reason.is_empty() {
        return Err("pragma reason must not be empty".to_string());
    }
    Ok((ids, reason))
}

/// Recursively collects `.rs` files under `root`, skipping `target/`,
/// hidden directories, and the configured excludes. Paths come back
/// workspace-relative with `/` separators, sorted (deterministic reports).
pub fn collect_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                let rel = rel_path(root, &path);
                if Config::matches_any(&format!("{rel}/"), &cfg.exclude) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if !Config::matches_any(&rel, &cfg.exclude) {
                    out.push(rel);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Resolves the Cargo package name owning `rel_path` by reading the
/// enclosing `crates/<dir>/Cargo.toml` (falling back to the directory name,
/// then to the root package `lsds`).
pub fn crate_of(root: &Path, rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some(dir) = rest.split('/').next() {
            let manifest = root.join("crates").join(dir).join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(manifest) {
                for line in text.lines() {
                    if let Some(v) = line.trim().strip_prefix("name") {
                        if let Some(name) = v.trim_start().strip_prefix('=') {
                            return name.trim().trim_matches('"').to_string();
                        }
                    }
                }
            }
            return format!("lsds-{dir}");
        }
    }
    "lsds".to_string()
}

/// Builds the [`FileCtx`] for one workspace-relative path.
pub fn file_ctx(root: &Path, cfg: &Config, rel: &str) -> FileCtx {
    let crate_name = crate_of(root, rel);
    let is_test_file = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/");
    FileCtx {
        rel_path: rel.to_string(),
        crate_name: crate_name.clone(),
        is_test_file,
        test_lines: Vec::new(),
        order_sensitive: cfg.order_sensitive_crates.contains(&crate_name),
        hot_path: Config::matches_any(rel, &cfg.hot_paths),
    }
}

/// Scans the whole tree under `root` (or only `only` when non-empty) and
/// returns all surviving findings, sorted by file then line. The symbol
/// table always covers the whole workspace, even for restricted scans.
pub fn scan_workspace(root: &Path, cfg: &Config, only: &[String]) -> std::io::Result<Vec<Finding>> {
    let ws = prepare_workspace(root, cfg, only)?;
    let targets = if only.is_empty() { None } else { Some(only) };
    Ok(ws.scan(cfg, targets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx {
        FileCtx {
            rel_path: "crates/x/src/lib.rs".to_string(),
            crate_name: "lsds-core".to_string(),
            is_test_file: false,
            test_lines: Vec::new(),
            order_sensitive: true,
            hot_path: true,
        }
    }

    #[test]
    fn pragma_with_reason_suppresses_same_line() {
        let cfg = Config::default();
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lsds-lint: allow(hot-path-panic) reason=\"test scaffold\"\n";
        let f = scan_source(&cfg, &ctx(), src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pragma_on_own_line_suppresses_next_code_line() {
        let cfg = Config::default();
        let src = "// lsds-lint: allow(hot-path-panic) reason=\"known invariant\"\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = scan_source(&cfg, &ctx(), src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pragma_without_reason_is_bad_pragma() {
        let cfg = Config::default();
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lsds-lint: allow(hot-path-panic)\n";
        let f = scan_source(&cfg, &ctx(), src);
        assert!(f.iter().any(|x| x.rule == "bad-pragma"));
        assert!(f.iter().any(|x| x.rule == "hot-path-panic"));
    }

    #[test]
    fn unused_pragma_is_reported() {
        let cfg = Config::default();
        let src = "// lsds-lint: allow(float-eq) reason=\"nothing here\"\nfn f() {}\n";
        let f = scan_source(&cfg, &ctx(), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-pragma");
    }

    #[test]
    fn file_wide_pragma_applies_everywhere() {
        let cfg = Config::default();
        let src = "//! lsds-lint: allow(hot-path-panic) reason=\"whole file is a panicking adapter\"\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = scan_source(&cfg, &ctx(), src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_rule_in_pragma_is_bad_pragma() {
        let cfg = Config::default();
        let src = "// lsds-lint: allow(no-such) reason=\"x\"\nfn f() {}\n";
        let f = scan_source(&cfg, &ctx(), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bad-pragma");
    }
}
