//! A lightweight Rust AST built by recursive descent over the lexer's
//! token stream.
//!
//! The parser recovers exactly the structure the semantic rules need and
//! no more: the **item tree** (functions, impl blocks with their trait and
//! self-type names, traits, structs with field lists, consts, inline
//! modules) and, inside function bodies, a **statement list** where each
//! statement is classified (`let` bindings, assignments, `for` loops,
//! other expressions) and carries its token [`Span`]. Expressions are kept
//! as token spans — the dataflow pass pattern-matches inside them — which
//! keeps the parser total: any token sequence parses, unknown constructs
//! degrade to [`ItemKind::Other`] or an unclassified expression statement,
//! and `rustc` remains the real syntax gate in CI.
//!
//! Generic argument lists are skipped with shift-aware angle matching
//! (the lexer emits `<<`/`>>` as single tokens, so they open/close two
//! levels at once).

use crate::lexer::{Tok, TokKind};

/// Half-open range of token indices into the file's token stream.
pub type Span = std::ops::Range<usize>;

/// One parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item, anywhere in the tree.
#[derive(Debug)]
pub struct Item {
    /// 1-based line of the item keyword.
    pub line: u32,
    /// What the item is.
    pub kind: ItemKind,
}

/// Item classification.
#[derive(Debug)]
pub enum ItemKind {
    /// A free function.
    Fn(FnDef),
    /// An `impl` block (inherent or trait).
    Impl(ImplDef),
    /// A trait definition (methods with default bodies are parsed).
    Trait(TraitDef),
    /// A struct with named fields (tuple/unit structs keep an empty list).
    Struct(StructDef),
    /// A module-level `const` or `static` with its value span.
    Const(ConstDef),
    /// An inline `mod name { … }` with its items.
    Mod(String, Vec<Item>),
    /// Anything else (`use`, `enum`, `type`, macros, …) — parsed past,
    /// not modeled.
    Other,
}

/// A function definition (or trait method with a default body).
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token span of the parameter list, parens excluded.
    pub params: Span,
    /// Token span of the return type (between `->` and the body/`where`),
    /// empty when the function returns `()`.
    pub ret: Span,
    /// Body block; `None` for bodiless trait method signatures.
    pub body: Option<Block>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplDef {
    /// Last path segment of the implemented trait (`None` for inherent
    /// impls).
    pub trait_name: Option<String>,
    /// Last path segment of the self type.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Functions defined in the block.
    pub fns: Vec<FnDef>,
    /// Associated consts defined in the block.
    pub consts: Vec<ConstDef>,
}

/// A trait definition.
#[derive(Debug)]
pub struct TraitDef {
    /// Trait name.
    pub name: String,
    /// 1-based line of the `trait` keyword.
    pub line: u32,
    /// Methods (with bodies when a default is given).
    pub fns: Vec<FnDef>,
}

/// A struct definition.
#[derive(Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Named fields in declaration order (empty for tuple/unit structs).
    pub fields: Vec<FieldDef>,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Token span of the field's type.
    pub ty: Span,
}

/// A `const`/`static` item (module-level or associated).
#[derive(Debug)]
pub struct ConstDef {
    /// Const name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Token span of the initializer expression.
    pub value: Span,
}

/// A brace-delimited block of statements.
#[derive(Debug)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Token span of the block's interior (braces excluded).
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub struct Stmt {
    /// 1-based line the statement starts on.
    pub line: u32,
    /// Token span of the whole statement (nested blocks included).
    pub span: Span,
    /// Statement classification.
    pub kind: StmtKind,
}

/// Statement classification — the shapes the dataflow pass distinguishes.
#[derive(Debug)]
pub enum StmtKind {
    /// `let [mut] pat [: ty] = init;` — `names` are the bound identifiers
    /// extracted from the pattern (filtered heuristically: type/variant
    /// segments and `_` are dropped).
    Let {
        /// Bound variable names.
        names: Vec<String>,
        /// Initializer span (`None` for `let x;`).
        init: Option<Span>,
    },
    /// `target = value;` / `target op= value;` at statement level.
    Assign {
        /// Left-hand-side span.
        target: Span,
        /// `true` for compound assignment (`+=` …), which reads the old
        /// value — taint accumulates instead of being replaced.
        compound: bool,
        /// Right-hand-side span.
        value: Span,
    },
    /// `for pat in iter { body }`.
    For {
        /// Loop variable names (same pattern filter as `Let`).
        vars: Vec<String>,
        /// Span of the iterated expression.
        iter: Span,
        /// Loop body.
        body: Block,
    },
    /// Any other expression statement. `blocks` are the statement's
    /// top-level brace groups (if/else arms, match bodies, loop bodies),
    /// parsed recursively so nested statements are visible to dataflow.
    Expr {
        /// Nested blocks, in source order.
        blocks: Vec<Block>,
    },
    /// A nested item (fn/struct/const declared inside a body).
    Item(Box<Item>),
}

/// Item keywords that can follow modifiers like `pub`/`const`/`unsafe`.
const MODIFIERS: &[&str] = &["pub", "default", "async", "unsafe", "extern"];

/// Parses one file's token stream. Never fails: unknown constructs are
/// skipped structurally (balanced delimiters) and recorded as
/// [`ItemKind::Other`].
pub fn parse(tokens: &[Tok]) -> ParsedFile {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    ParsedFile {
        items: p.items_until(None),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off)
    }

    fn peek_is_punct(&self, off: usize, s: &str) -> bool {
        self.peek(off).is_some_and(|t| t.is_punct(s))
    }

    fn peek_is_ident(&self, off: usize, s: &str) -> bool {
        self.peek(off).is_some_and(|t| t.is_ident(s))
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    /// Skips one `#[…]` / `#![…]` attribute if present.
    fn skip_attr(&mut self) -> bool {
        if !self.peek_is_punct(0, "#") {
            return false;
        }
        let bracket = if self.peek_is_punct(1, "[") {
            1
        } else if self.peek_is_punct(1, "!") && self.peek_is_punct(2, "[") {
            2
        } else {
            return false;
        };
        self.pos += bracket;
        self.skip_balanced("[", "]");
        true
    }

    /// Assumes the cursor is on `open`; advances past its matching `close`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips a generic argument list if the cursor is on `<`. The lexer
    /// emits `<<`/`>>` as single tokens (two levels at once).
    fn skip_generics(&mut self) {
        if !self.peek_is_punct(0, "<") && !self.peek_is_punct(0, "<<") {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct("<<") {
                depth += 2;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct(">>") {
                depth -= 2;
            } else if t.is_punct("->") || t.is_punct(";") || t.is_punct("{") {
                // safety valve: a stray comparison would otherwise eat the
                // rest of the file
                return;
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    /// Parses items until `end` (a closing brace) or EOF. The cursor must
    /// be *inside* the braces; the closing brace is consumed.
    fn items_until(&mut self, end: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.at_end() {
            if let Some(close) = end {
                if self.peek_is_punct(0, close) {
                    self.bump();
                    return items;
                }
            }
            if self.skip_attr() {
                continue;
            }
            if let Some(item) = self.item() {
                items.push(item);
            }
        }
        items
    }

    /// Parses one item at the cursor, or advances one token and returns
    /// `None` for stray tokens.
    fn item(&mut self) -> Option<Item> {
        let line = self.line();
        // modifiers: `pub`, `pub(crate)`, `default`, `async`, `unsafe`,
        // `extern "C"`, and `const` only when followed by `fn`
        let mut saw_modifier = true;
        while saw_modifier {
            saw_modifier = false;
            if let Some(t) = self.peek(0) {
                if t.kind == TokKind::Ident && MODIFIERS.contains(&t.text.as_str()) {
                    let is_extern = t.is_ident("extern");
                    self.bump();
                    if self.peek_is_punct(0, "(") {
                        self.skip_balanced("(", ")");
                    }
                    if is_extern && self.peek(0).is_some_and(|t| t.kind == TokKind::Str) {
                        self.bump();
                    }
                    saw_modifier = true;
                } else if t.is_ident("const") && self.peek_is_ident(1, "fn") {
                    self.bump();
                    saw_modifier = true;
                }
            }
        }
        let t = self.peek(0)?;
        if t.kind != TokKind::Ident {
            self.bump();
            return None;
        }
        let kw = t.text.clone();
        match kw.as_str() {
            "fn" => {
                let f = self.fn_def();
                Some(Item {
                    line,
                    kind: ItemKind::Fn(f),
                })
            }
            "impl" => Some(Item {
                line,
                kind: self.impl_def(),
            }),
            "trait" => Some(Item {
                line,
                kind: self.trait_def(),
            }),
            "struct" => Some(Item {
                line,
                kind: self.struct_def(),
            }),
            "const" | "static" => Some(Item {
                line,
                kind: self.const_def(),
            }),
            "mod" => {
                self.bump();
                let name = self
                    .peek(0)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                self.bump();
                if self.peek_is_punct(0, "{") {
                    self.bump();
                    let items = self.items_until(Some("}"));
                    Some(Item {
                        line,
                        kind: ItemKind::Mod(name, items),
                    })
                } else {
                    // `mod name;` — out-of-line, nothing to parse here
                    if self.peek_is_punct(0, ";") {
                        self.bump();
                    }
                    Some(Item {
                        line,
                        kind: ItemKind::Other,
                    })
                }
            }
            "enum" | "union" => {
                self.bump(); // keyword
                self.bump(); // name
                self.skip_generics();
                while !self.at_end() && !self.peek_is_punct(0, "{") && !self.peek_is_punct(0, ";") {
                    self.bump();
                }
                if self.peek_is_punct(0, "{") {
                    self.skip_balanced("{", "}");
                } else {
                    self.bump();
                }
                Some(Item {
                    line,
                    kind: ItemKind::Other,
                })
            }
            "use" | "type" => {
                while !self.at_end() && !self.peek_is_punct(0, ";") {
                    self.bump();
                }
                self.bump();
                Some(Item {
                    line,
                    kind: ItemKind::Other,
                })
            }
            _ => {
                // macro invocation / macro_rules / unknown: skip to the end
                // of the construct — a balanced brace group or a `;`
                while !self.at_end() {
                    if self.peek_is_punct(0, ";") {
                        self.bump();
                        break;
                    }
                    if self.peek_is_punct(0, "{") {
                        self.skip_balanced("{", "}");
                        break;
                    }
                    if self.peek_is_punct(0, "}") {
                        break; // container's closing brace, not ours
                    }
                    self.bump();
                }
                Some(Item {
                    line,
                    kind: ItemKind::Other,
                })
            }
        }
    }

    /// Parses `fn name<g>(params) [-> ret] [where …] { body }` with the
    /// cursor on `fn`.
    fn fn_def(&mut self) -> FnDef {
        let line = self.line();
        self.bump(); // `fn`
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        self.bump();
        self.skip_generics();
        let mut params = 0..0;
        if self.peek_is_punct(0, "(") {
            let start = self.pos + 1;
            self.skip_balanced("(", ")");
            params = start..self.pos - 1;
        }
        let mut ret = 0..0;
        if self.peek_is_punct(0, "->") {
            self.bump();
            let start = self.pos;
            // return type runs to `where`, `{`, or `;` at angle depth 0
            let mut angle = 0i32;
            while let Some(t) = self.peek(0) {
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct("<<") {
                    angle += 2;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if t.is_punct(">>") {
                    angle -= 2;
                } else if angle <= 0 && (t.is_ident("where") || t.is_punct("{") || t.is_punct(";"))
                {
                    break;
                }
                self.bump();
            }
            ret = start..self.pos;
        }
        // where clause
        if self.peek_is_ident(0, "where") {
            while !self.at_end() && !self.peek_is_punct(0, "{") && !self.peek_is_punct(0, ";") {
                self.bump();
            }
        }
        let body = if self.peek_is_punct(0, "{") {
            Some(self.block())
        } else {
            if self.peek_is_punct(0, ";") {
                self.bump();
            }
            None
        };
        FnDef {
            name,
            line,
            params,
            ret,
            body,
        }
    }

    /// Parses `impl<g> [Trait for] Type { … }` with the cursor on `impl`.
    fn impl_def(&mut self) -> ItemKind {
        let line = self.line();
        self.bump(); // `impl`
        self.skip_generics();
        // collect the path tokens up to `for` / `{` / `where` at depth 0
        let first = self.path_head();
        let (trait_name, type_name) = if self.peek_is_ident(0, "for") {
            self.bump();
            let second = self.path_head();
            (Some(first), second)
        } else {
            (None, first)
        };
        if self.peek_is_ident(0, "where") {
            while !self.at_end() && !self.peek_is_punct(0, "{") {
                self.bump();
            }
        }
        let mut fns = Vec::new();
        let mut consts = Vec::new();
        if self.peek_is_punct(0, "{") {
            self.bump();
            while !self.at_end() && !self.peek_is_punct(0, "}") {
                if self.skip_attr() {
                    continue;
                }
                // modifiers inside impls
                if self.peek(0).is_some_and(|t| {
                    t.kind == TokKind::Ident && MODIFIERS.contains(&t.text.as_str())
                }) {
                    self.bump();
                    if self.peek_is_punct(0, "(") {
                        self.skip_balanced("(", ")");
                    }
                    continue;
                }
                if self.peek_is_ident(0, "fn")
                    || (self.peek_is_ident(0, "const") && self.peek_is_ident(1, "fn"))
                {
                    if self.peek_is_ident(0, "const") {
                        self.bump();
                    }
                    fns.push(self.fn_def());
                } else if self.peek_is_ident(0, "const") {
                    if let ItemKind::Const(c) = self.const_def() {
                        consts.push(c);
                    }
                } else if self.peek_is_ident(0, "type") {
                    while !self.at_end() && !self.peek_is_punct(0, ";") {
                        self.bump();
                    }
                    self.bump();
                } else {
                    self.bump();
                }
            }
            self.bump(); // `}`
        }
        ItemKind::Impl(ImplDef {
            trait_name,
            type_name,
            line,
            fns,
            consts,
        })
    }

    /// Reads a type/trait path at the cursor and returns its last plain
    /// segment, skipping generics, `&`, lifetimes, and `dyn`/`mut`.
    fn path_head(&mut self) -> String {
        let mut last = String::new();
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Ident {
                if t.is_ident("for") || t.is_ident("where") {
                    break;
                }
                if !t.is_ident("dyn") && !t.is_ident("mut") {
                    last = t.text.clone();
                }
                self.bump();
            } else if t.is_punct("::") || t.is_punct("&") || t.kind == TokKind::Lifetime {
                self.bump();
            } else if t.is_punct("<") || t.is_punct("<<") {
                self.skip_generics();
            } else if t.is_punct("(") {
                // tuple type / fn pointer args
                self.skip_balanced("(", ")");
            } else if t.is_punct("[") {
                self.skip_balanced("[", "]");
            } else {
                break;
            }
        }
        last
    }

    /// Parses `trait Name … { fns }` with the cursor on `trait`.
    fn trait_def(&mut self) -> ItemKind {
        let line = self.line();
        self.bump(); // `trait`
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        self.bump();
        self.skip_generics();
        while !self.at_end() && !self.peek_is_punct(0, "{") && !self.peek_is_punct(0, ";") {
            self.bump();
        }
        let mut fns = Vec::new();
        if self.peek_is_punct(0, "{") {
            self.bump();
            while !self.at_end() && !self.peek_is_punct(0, "}") {
                if self.skip_attr() {
                    continue;
                }
                if self.peek_is_ident(0, "fn") {
                    fns.push(self.fn_def());
                } else {
                    self.bump();
                }
            }
            self.bump();
        } else {
            self.bump();
        }
        ItemKind::Trait(TraitDef { name, line, fns })
    }

    /// Parses `struct Name<g> { fields } | (tuple); | ;` with the cursor
    /// on `struct`.
    fn struct_def(&mut self) -> ItemKind {
        let line = self.line();
        self.bump(); // `struct`
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        self.bump();
        self.skip_generics();
        if self.peek_is_ident(0, "where") {
            while !self.at_end() && !self.peek_is_punct(0, "{") && !self.peek_is_punct(0, ";") {
                self.bump();
            }
        }
        let mut fields = Vec::new();
        if self.peek_is_punct(0, "{") {
            self.bump();
            while !self.at_end() && !self.peek_is_punct(0, "}") {
                if self.skip_attr() {
                    continue;
                }
                if self.peek_is_ident(0, "pub") {
                    self.bump();
                    if self.peek_is_punct(0, "(") {
                        self.skip_balanced("(", ")");
                    }
                    continue;
                }
                // `name : ty ,`
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident)
                    && self.peek_is_punct(1, ":")
                {
                    let fname = self.peek(0).map(|t| t.text.clone()).unwrap_or_default();
                    self.bump();
                    self.bump(); // `:`
                    let start = self.pos;
                    // type runs to `,` or `}` at depth 0
                    let mut depth = 0i32;
                    while let Some(t) = self.peek(0) {
                        if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                            depth += 1;
                        } else if t.is_punct("<<") {
                            depth += 2;
                        } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                            depth -= 1;
                        } else if t.is_punct(">>") {
                            depth -= 2;
                        } else if depth <= 0 && (t.is_punct(",") || t.is_punct("}")) {
                            break;
                        }
                        self.bump();
                    }
                    fields.push(FieldDef {
                        name: fname,
                        ty: start..self.pos,
                    });
                    if self.peek_is_punct(0, ",") {
                        self.bump();
                    }
                } else {
                    self.bump();
                }
            }
            self.bump(); // `}`
        } else if self.peek_is_punct(0, "(") {
            self.skip_balanced("(", ")");
            if self.peek_is_punct(0, ";") {
                self.bump();
            }
        } else if self.peek_is_punct(0, ";") {
            self.bump();
        }
        ItemKind::Struct(StructDef { name, line, fields })
    }

    /// Parses `const NAME: ty = value;` / `static [mut] NAME: ty = value;`
    /// with the cursor on the keyword.
    fn const_def(&mut self) -> ItemKind {
        let line = self.line();
        self.bump(); // `const` / `static`
        if self.peek_is_ident(0, "mut") {
            self.bump();
        }
        let name = self
            .peek(0)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        self.bump();
        // skip `: ty` to the `=` at depth 0
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("<<") {
                depth += 2;
            } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct(">>") {
                depth -= 2;
            } else if depth <= 0 && (t.is_punct("=") || t.is_punct(";")) {
                break;
            }
            self.bump();
        }
        let mut value = 0..0;
        if self.peek_is_punct(0, "=") {
            self.bump();
            let start = self.pos;
            let mut d = 0i32;
            while let Some(t) = self.peek(0) {
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    d += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    d -= 1;
                } else if d <= 0 && t.is_punct(";") {
                    break;
                }
                self.bump();
            }
            value = start..self.pos;
        }
        if self.peek_is_punct(0, ";") {
            self.bump();
        }
        ItemKind::Const(ConstDef { name, line, value })
    }

    /// Parses a `{ … }` block with the cursor on `{`.
    fn block(&mut self) -> Block {
        self.bump(); // `{`
        let start = self.pos;
        let stmts = self.stmts_until_close();
        Block {
            stmts,
            span: start..self.pos.saturating_sub(1),
        }
    }

    /// Statement keywords that open a block-form expression statement.
    fn is_block_keyword(t: &Tok) -> bool {
        t.is_ident("if")
            || t.is_ident("match")
            || t.is_ident("while")
            || t.is_ident("loop")
            || t.is_ident("unsafe")
    }

    /// Parses statements until the block's closing `}` (consumed).
    fn stmts_until_close(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while !self.at_end() {
            if self.peek_is_punct(0, "}") {
                self.bump();
                return stmts;
            }
            if self.peek_is_punct(0, ";") {
                self.bump();
                continue;
            }
            if self.skip_attr() {
                continue;
            }
            // nested items inside bodies
            if self.peek_is_ident(0, "fn")
                || self.peek_is_ident(0, "struct")
                || (self.peek_is_ident(0, "const")
                    && self
                        .peek(1)
                        .is_some_and(|t| t.kind == TokKind::Ident && !t.is_ident("fn"))
                    && self.peek_is_punct(2, ":"))
            {
                let line = self.line();
                if let Some(item) = self.item() {
                    let at = self.pos;
                    stmts.push(Stmt {
                        line,
                        span: at..at,
                        kind: StmtKind::Item(Box::new(item)),
                    });
                }
                continue;
            }
            if self.peek_is_ident(0, "let") {
                stmts.push(self.let_stmt());
                continue;
            }
            if self.peek_is_ident(0, "for") {
                stmts.push(self.for_stmt());
                continue;
            }
            stmts.push(self.expr_stmt());
        }
        stmts
    }

    /// Extracts binding names from a pattern span: plain lowercase-start
    /// identifiers, minus keywords, `_`, and path segments (uppercase by
    /// convention — `Some`, `Ev::Cross`).
    fn pattern_names(&self, span: Span) -> Vec<String> {
        let mut names = Vec::new();
        let mut i = span.start;
        while i < span.end {
            let t = &self.toks[i];
            let next = (i + 1 < span.end).then(|| &self.toks[i + 1]);
            i += 1;
            if t.kind != TokKind::Ident
                || matches!(t.text.as_str(), "mut" | "ref" | "box" | "_" | "self")
                || t.text.starts_with(|c: char| c.is_ascii_uppercase())
            {
                continue;
            }
            // A path segment followed by `::` is a type/enum, not a binding;
            // an ident before `:` is a struct-pattern field name. Both
            // lookaheads stay inside the span: a `:` just past it is the
            // let's type ascription, not a field pattern.
            if let Some(n) = next {
                if n.is_punct("::") || n.is_punct(":") {
                    continue;
                }
            }
            names.push(t.text.clone());
        }
        names
    }

    /// Parses `let pat [: ty] [= init] [else { … }] ;` with the cursor on
    /// `let`.
    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        let start = self.pos;
        self.bump(); // `let`
                     // pattern: to `:` / `=` / `;` at depth 0
        let pat_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth <= 0 && (t.is_punct(":") || t.is_punct("=") || t.is_punct(";")) {
                break;
            }
            self.bump();
        }
        let names = self.pattern_names(pat_start..self.pos);
        // optional type ascription
        if self.peek_is_punct(0, ":") {
            self.bump();
            let mut d = 0i32;
            while let Some(t) = self.peek(0) {
                if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                    d += 1;
                } else if t.is_punct("<<") {
                    d += 2;
                } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                    d -= 1;
                } else if t.is_punct(">>") {
                    d -= 2;
                } else if d <= 0 && (t.is_punct("=") || t.is_punct(";")) {
                    break;
                }
                self.bump();
            }
        }
        let mut init = None;
        if self.peek_is_punct(0, "=") {
            self.bump();
            let istart = self.pos;
            let mut d = 0i32;
            while let Some(t) = self.peek(0) {
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    d += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    if d == 0 {
                        break; // unbalanced: container close, stop here
                    }
                    d -= 1;
                } else if d == 0 && t.is_punct(";") {
                    break;
                } else if d == 0 && t.is_ident("else") && self.peek_is_punct(1, "{") {
                    break; // let-else diverging arm
                }
                self.bump();
            }
            init = Some(istart..self.pos);
            if self.peek_is_ident(0, "else") {
                self.bump();
                if self.peek_is_punct(0, "{") {
                    self.skip_balanced("{", "}");
                }
            }
        }
        if self.peek_is_punct(0, ";") {
            self.bump();
        }
        Stmt {
            line,
            span: start..self.pos,
            kind: StmtKind::Let { names, init },
        }
    }

    /// Parses `for pat in iter { body }` with the cursor on `for`.
    fn for_stmt(&mut self) -> Stmt {
        let line = self.line();
        let start = self.pos;
        self.bump(); // `for`
        let pat_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth <= 0 && t.is_ident("in") {
                break;
            }
            self.bump();
        }
        let vars = self.pattern_names(pat_start..self.pos);
        self.bump(); // `in`
        let iter_start = self.pos;
        let mut d = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("(") || t.is_punct("[") {
                d += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                d -= 1;
            } else if d <= 0 && t.is_punct("{") {
                break;
            }
            self.bump();
        }
        let iter = iter_start..self.pos;
        let body = if self.peek_is_punct(0, "{") {
            self.block()
        } else {
            Block {
                stmts: Vec::new(),
                span: self.pos..self.pos,
            }
        };
        Stmt {
            line,
            span: start..self.pos,
            kind: StmtKind::For { vars, iter, body },
        }
    }

    /// Parses a general expression statement: runs to `;` at depth 0, or —
    /// for block-form statements (`if`/`match`/`while`/`loop`/bare block) —
    /// to the closing brace of the construct (handling `else` chains).
    /// Top-level `=`/compound assignments are classified as `Assign`;
    /// depth-0 brace groups are parsed recursively into `blocks`.
    fn expr_stmt(&mut self) -> Stmt {
        let line = self.line();
        let start = self.pos;
        let block_form =
            self.peek(0).is_some_and(Self::is_block_keyword) || self.peek_is_punct(0, "{");
        let mut blocks = Vec::new();
        let mut assign_at: Option<(usize, bool)> = None;
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
                self.bump();
                continue;
            }
            if t.is_punct(")") || t.is_punct("]") {
                if depth == 0 {
                    break; // container close — malformed input, stop
                }
                depth -= 1;
                self.bump();
                continue;
            }
            if t.is_punct("}") && depth == 0 {
                break; // enclosing block's close
            }
            if t.is_punct("{") && depth == 0 {
                blocks.push(self.block());
                // block-form statement ends at its construct's last brace —
                // unless an `else` chains on
                if block_form && !self.peek_is_ident(0, "else") {
                    // `match`/`loop`/`while`/final `else` → done; but an
                    // `if` inside `match arms` etc. is nested, so only the
                    // outermost decides. We are at depth 0, so done.
                    break;
                }
                continue;
            }
            if t.is_punct("{") {
                // brace group inside parens/brackets (closure body in a
                // call): skip structurally, not a statement-level block
                self.skip_balanced("{", "}");
                continue;
            }
            if depth == 0 && t.is_punct(";") {
                self.bump();
                break;
            }
            if depth == 0 && assign_at.is_none() && !block_form {
                if t.is_punct("=") {
                    assign_at = Some((self.pos, false));
                } else if matches!(
                    t.text.as_str(),
                    "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                ) && t.kind == TokKind::Punct
                {
                    assign_at = Some((self.pos, true));
                }
            }
            self.bump();
        }
        let end = self.pos;
        let kind = if let Some((eq, compound)) = assign_at {
            let vend = if self
                .toks
                .get(end.saturating_sub(1))
                .is_some_and(|t| t.is_punct(";"))
            {
                end - 1
            } else {
                end
            };
            StmtKind::Assign {
                target: start..eq,
                compound,
                value: eq + 1..vend,
            }
        } else {
            StmtKind::Expr { blocks }
        };
        Stmt {
            line,
            span: start..end,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn parses_items_and_impls() {
        let f = parse_src(
            "pub struct S { pub a: u64, b: HashMap<u64, f64> }\n\
             impl LogicalProcess for S {\n\
                 fn handle(&mut self) { self.a += 1; }\n\
                 fn lookahead(&self) -> f64 { 0.5 }\n\
             }\n\
             impl S { fn helper(&self) {} }\n\
             const LA: f64 = 0.25;\n",
        );
        assert_eq!(f.items.len(), 4);
        let ItemKind::Struct(s) = &f.items[0].kind else {
            panic!("expected struct")
        };
        assert_eq!(s.name, "S");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].name, "b");
        let ItemKind::Impl(i) = &f.items[1].kind else {
            panic!("expected impl")
        };
        assert_eq!(i.trait_name.as_deref(), Some("LogicalProcess"));
        assert_eq!(i.type_name, "S");
        assert_eq!(i.fns.len(), 2);
        assert_eq!(i.fns[0].name, "handle");
        let ItemKind::Impl(inh) = &f.items[2].kind else {
            panic!("expected inherent impl")
        };
        assert!(inh.trait_name.is_none());
        let ItemKind::Const(c) = &f.items[3].kind else {
            panic!("expected const")
        };
        assert_eq!(c.name, "LA");
    }

    #[test]
    fn generic_impls_resolve_last_segment() {
        let f = parse_src(
            "impl<'a, M: Send> lp::LogicalProcess for path::To<Type<M>> { fn handle(&mut self) {} }",
        );
        let ItemKind::Impl(i) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(i.trait_name.as_deref(), Some("LogicalProcess"));
        assert_eq!(i.type_name, "To");
        assert_eq!(i.fns.len(), 1);
    }

    #[test]
    fn statements_classify() {
        let f = parse_src(
            "fn f(m: &HashMap<u64, u64>) {\n\
                 let mut ids: Vec<u64> = m.keys().copied().collect();\n\
                 ids.sort_unstable();\n\
                 let (a, b) = (1, 2);\n\
                 total += a;\n\
                 for k in ids { go(k); }\n\
                 if a > 0 { let c = b; go(c); } else { stop(); }\n\
             }",
        );
        let ItemKind::Fn(fun) = &f.items[0].kind else {
            panic!()
        };
        let stmts = &fun.body.as_ref().unwrap().stmts;
        assert_eq!(stmts.len(), 6);
        assert!(matches!(&stmts[0].kind, StmtKind::Let { names, .. } if names == &["ids"]));
        assert!(matches!(&stmts[1].kind, StmtKind::Expr { .. }));
        assert!(
            matches!(&stmts[2].kind, StmtKind::Let { names, .. } if names == &["a".to_string(), "b".to_string()])
        );
        assert!(matches!(
            &stmts[3].kind,
            StmtKind::Assign { compound: true, .. }
        ));
        let StmtKind::For { vars, body, .. } = &stmts[4].kind else {
            panic!("expected for, got {:?}", stmts[4].kind)
        };
        assert_eq!(vars, &["k"]);
        assert_eq!(body.stmts.len(), 1);
        let StmtKind::Expr { blocks } = &stmts[5].kind else {
            panic!("expected if as expr stmt")
        };
        assert_eq!(blocks.len(), 2, "then and else blocks");
        assert_eq!(blocks[0].stmts.len(), 2);
    }

    #[test]
    fn let_else_and_match_parse_through() {
        let f = parse_src(
            "fn f(x: Option<u64>) -> u64 {\n\
                 let Some(v) = x else { return 0; };\n\
                 match v { 0 => zero(), n => { other(n); } }\n\
                 v\n\
             }",
        );
        let ItemKind::Fn(fun) = &f.items[0].kind else {
            panic!()
        };
        let stmts = &fun.body.as_ref().unwrap().stmts;
        assert!(matches!(&stmts[0].kind, StmtKind::Let { names, .. } if names == &["v"]));
        assert!(stmts.len() >= 2);
    }

    #[test]
    fn trait_with_default_bodies() {
        let f = parse_src(
            "pub trait T: Send {\n\
                 fn required(&self) -> f64;\n\
                 fn provided(&self) -> u64 { 7 }\n\
             }",
        );
        let ItemKind::Trait(t) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(t.name, "T");
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns[0].body.is_none());
        assert!(t.fns[1].body.is_some());
    }

    #[test]
    fn inline_mods_nest() {
        let f = parse_src("mod inner { pub fn g() {} }\nfn top() {}");
        let ItemKind::Mod(name, items) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(name, "inner");
        assert!(matches!(items[0].kind, ItemKind::Fn(_)));
        assert!(matches!(f.items[1].kind, ItemKind::Fn(_)));
    }

    #[test]
    fn shift_ops_inside_generics_do_not_derail() {
        let f = parse_src("fn f(v: Vec<Vec<u64>>) -> Vec<Vec<u64>> { v }\nfn g() {}");
        assert_eq!(f.items.len(), 2);
        assert!(matches!(f.items[1].kind, ItemKind::Fn(_)));
    }

    #[test]
    fn closures_in_call_args_stay_inside_the_statement() {
        let f = parse_src(
            "fn f(v: &mut Vec<f64>) {\n\
                 v.sort_by(|a, b| { a.total_cmp(b) });\n\
                 second();\n\
             }",
        );
        let ItemKind::Fn(fun) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(fun.body.as_ref().unwrap().stmts.len(), 2);
    }
}
