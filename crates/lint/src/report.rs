//! JSON findings report, exported through `lsds-trace`'s JSON model.
//!
//! The schema is versioned and round-trips bit-for-bit through
//! [`lsds_trace::Json`]:
//!
//! ```json
//! {
//!   "tool": "lsds-lint", "schema_version": 1,
//!   "findings": [
//!     {"rule": "hash-iter", "severity": "error",
//!      "file": "crates/net/src/flow.rs", "line": 12, "message": "…"}
//!   ],
//!   "summary": {"total": 1, "by_rule": {"hash-iter": 1}}
//! }
//! ```

use crate::rules::{Finding, Severity};
use lsds_trace::Json;

/// Report schema version; bump on breaking change.
pub const SCHEMA_VERSION: f64 = 1.0;

/// Renders findings into the versioned JSON report document.
pub fn to_json(findings: &[Finding]) -> Json {
    let items: Vec<Json> = findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(f.rule.to_string())),
                (
                    "severity".to_string(),
                    Json::Str(f.severity.name().to_string()),
                ),
                ("file".to_string(), Json::Str(f.file.clone())),
                ("line".to_string(), Json::Num(f.line as f64)),
                ("message".to_string(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    // per-rule counts in first-seen order (findings arrive file/line-sorted,
    // so the order is deterministic)
    let mut by_rule: Vec<(String, f64)> = Vec::new();
    for f in findings {
        match by_rule.iter_mut().find(|(r, _)| r == f.rule) {
            Some((_, n)) => *n += 1.0,
            None => by_rule.push((f.rule.to_string(), 1.0)),
        }
    }
    Json::Obj(vec![
        ("tool".to_string(), Json::Str("lsds-lint".to_string())),
        ("schema_version".to_string(), Json::Num(SCHEMA_VERSION)),
        ("findings".to_string(), Json::Arr(items)),
        (
            "summary".to_string(),
            Json::Obj(vec![
                ("total".to_string(), Json::Num(findings.len() as f64)),
                (
                    "by_rule".to_string(),
                    Json::Obj(
                        by_rule
                            .into_iter()
                            .map(|(r, n)| (r, Json::Num(n)))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Parses a report document back into findings (schema round-trip; used by
/// tests and any downstream tooling consuming the CI artifact).
pub fn from_json(doc: &Json) -> Result<Vec<Finding>, String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("unsupported schema_version {version}"));
    }
    let Some(Json::Arr(items)) = doc.get("findings") else {
        return Err("missing findings array".to_string());
    };
    items
        .iter()
        .map(|item| {
            let rule_name = item
                .get("rule")
                .and_then(Json::as_str)
                .ok_or("finding without rule")?;
            let rule = crate::rules::RULES
                .iter()
                .find(|r| r.id == rule_name)
                .map(|r| r.id)
                .ok_or_else(|| format!("unknown rule {rule_name:?}"))?;
            let severity = match item.get("severity").and_then(Json::as_str) {
                Some("off") => Severity::Off,
                Some("warn") => Severity::Warn,
                Some("error") => Severity::Error,
                other => return Err(format!("bad severity {other:?}")),
            };
            Ok(Finding {
                rule,
                severity,
                file: item
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or("finding without file")?
                    .to_string(),
                line: item
                    .get("line")
                    .and_then(Json::as_f64)
                    .ok_or("finding without line")? as u32,
                message: item
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("finding without message")?
                    .to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "hash-iter",
                severity: Severity::Error,
                file: "crates/net/src/flow.rs".to_string(),
                line: 12,
                message: "iterates a HashMap".to_string(),
            },
            Finding {
                rule: "missing-docs",
                severity: Severity::Warn,
                file: "crates/grid/src/model.rs".to_string(),
                line: 3,
                message: "public `fn f` has no doc comment".to_string(),
            },
        ]
    }

    #[test]
    fn report_round_trips_through_lsds_trace() {
        let findings = sample();
        let text = to_json(&findings).render_pretty();
        let doc = Json::parse(&text).expect("report must be valid JSON");
        let back = from_json(&doc).expect("schema round-trip");
        assert_eq!(back, findings);
    }

    #[test]
    fn summary_counts_by_rule() {
        let doc = to_json(&sample());
        let total = doc
            .get("summary")
            .and_then(|s| s.get("total"))
            .and_then(Json::as_f64);
        assert_eq!(total, Some(2.0));
        let n = doc
            .get("summary")
            .and_then(|s| s.get("by_rule"))
            .and_then(|b| b.get("hash-iter"))
            .and_then(Json::as_f64);
        assert_eq!(n, Some(1.0));
    }

    #[test]
    fn version_mismatch_rejected() {
        let doc = Json::parse(r#"{"schema_version": 99, "findings": []}"#).unwrap();
        assert!(from_json(&doc).is_err());
    }
}
