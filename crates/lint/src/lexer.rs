//! A lightweight Rust tokenizer.
//!
//! The workspace builds fully offline, so instead of `syn`/`proc-macro2`
//! this module implements the small token model the rule engine needs:
//! identifiers, literals, multi-character operators, and doc comments, each
//! tagged with its 1-based source line. Ordinary comments are consumed (the
//! pragma scanner in [`crate::scan`] reads them from the raw lines), string
//! and char literals are fully skipped over (so their contents can never
//! fake a rule trigger), and `#[cfg(test)]` regions can be mapped to line
//! ranges with [`test_line_ranges`].

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`s, without the `r#`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// Integer literal (decimal, hex, octal, binary; suffix included).
    Int,
    /// Floating-point literal (has a fraction, exponent, or float suffix).
    Float,
    /// String, byte-string, or raw-string literal (text is the raw lexeme).
    Str,
    /// Character or byte literal.
    Char,
    /// Punctuation / operator, maximal-munch (`==`, `::`, `->`, …).
    Punct,
    /// Outer doc comment (`///`, `/** */`), text without markers.
    DocComment,
    /// Inner doc comment (`//!`, `/*! */`), text without markers. Kept
    /// distinct so `missing-docs` never mistakes a module header for the
    /// doc of the first item below it.
    InnerDoc,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this token is the exact identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the exact punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch is a prefix
/// scan. Single characters fall through to one-char puncts.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

/// Tokenizes Rust source. Unrecognized bytes are skipped (the rules only
/// need a faithful stream for well-formed code, and `rustc` is the real
/// syntax gate in CI).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    };
    lx.run();
    lx.out
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.pos + off).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        if b == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        b
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_prefixed(),
                b'0'..=b'9' => self.number(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ => self.punct(),
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        // `///x` is an outer doc, `//!x` an inner doc; `////…` is plain.
        if let Some(body) = text
            .strip_prefix("///")
            .filter(|_| !text.starts_with("////"))
        {
            self.push(TokKind::DocComment, body.trim().to_string(), line);
        } else if let Some(body) = text.strip_prefix("//!") {
            self.push(TokKind::InnerDoc, body.trim().to_string(), line);
        }
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
                     // `/** …` and `/*! …` are docs; `/***…` is not (rustdoc rule) and
                     // the empty `/**/` is a plain comment, not an empty doc
        let is_doc =
            matches!(self.peek(0), b'*' | b'!') && self.peek(1) != b'*' && self.peek(1) != b'/';
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        if is_doc {
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
            let kind = if text.starts_with("/*!") {
                TokKind::InnerDoc
            } else {
                TokKind::DocComment
            };
            let body = text
                .trim_start_matches("/**")
                .trim_start_matches("/*!")
                .trim_end_matches("*/");
            self.push(kind, body.trim().to_string(), line);
        }
    }

    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        // String prefixes: r"", r#"", b"", br"", b'', and raw idents r#x.
        match self.peek(0) {
            b'r' => {
                // raw string: `r"…"` or `r#…#"…"#…#` with any number of
                // hashes — scan past the hash run before deciding, so
                // `r##"…"##` does not fall through to the ident path (which
                // would let the string's body swallow the following lines)
                let mut h = 1usize;
                while self.peek(h) == b'#' {
                    h += 1;
                }
                if self.peek(h) == b'"' {
                    self.raw_string();
                    return;
                }
                if self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                    self.bump();
                    self.bump(); // skip r#
                    self.plain_ident(line);
                    return;
                }
            }
            b'b' => {
                if self.peek(1) == b'"' {
                    self.bump();
                    self.string();
                    return;
                }
                if self.peek(1) == b'\'' {
                    self.bump();
                    self.char_or_lifetime();
                    return;
                }
                if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') {
                    self.bump();
                    self.raw_string();
                    return;
                }
            }
            _ => {}
        }
        self.plain_ident(line);
    }

    fn plain_ident(&mut self, line: u32) {
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
            // fraction: a '.' followed by a digit (not `..` or `.method()`)
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                float = true;
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            } else if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1))
            {
                // trailing-dot float such as `1.`
                float = true;
                self.bump();
            }
            // exponent
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                if matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            // suffix (f32/f64 makes it a float; u8…i128/usize stay ints)
            if self.peek(0) == b'f' && (self.peek(1) == b'3' || self.peek(1) == b'6') {
                float = true;
            }
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(
            if float { TokKind::Float } else { TokKind::Int },
            text,
            line,
        );
    }

    fn string(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            if self.pos >= self.src.len() {
                break;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump(); // '\''
        if is_ident_start(self.peek(0)) && self.peek(1) != b'\'' {
            // lifetime: 'a, 'static — ident chars, no closing quote
            let istart = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[istart..self.pos])
                .unwrap_or("")
                .to_string();
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // char literal: consume to the closing quote, skipping escapes —
        // multi-byte escapes (`'\x41'`, `'\u{1F600}'`) must not leave the
        // tail of the literal behind as stray tokens
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(TokKind::Char, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        for op in OPS {
            let bytes = op.as_bytes();
            if self.src[self.pos..].starts_with(bytes) {
                for _ in 0..bytes.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_string(), line);
                return;
            }
        }
        let b = self.bump();
        self.push(TokKind::Punct, (b as char).to_string(), line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Line ranges (1-based, inclusive) of items under a `#[cfg(test)]` or
/// `#[test]` attribute: the attribute line through the closing brace of the
/// item it gates (or its `;` for brace-less items).
pub fn test_line_ranges(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[") {
            // collect attribute tokens up to the matching ']'
            let attr_line = tokens[i].line;
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < tokens.len() {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_ident("test") || tokens[j].is_ident("bench") {
                    is_test_attr = true;
                }
                j += 1;
            }
            if is_test_attr {
                // find the item's body: first '{' at attribute end, matched
                // to its closing '}' (or a ';' before any '{')
                let mut k = j + 1;
                let mut bdepth = 0usize;
                let mut end_line = attr_line;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        bdepth += 1;
                    } else if tokens[k].is_punct("}") {
                        bdepth -= 1;
                        if bdepth == 0 {
                            end_line = tokens[k].line;
                            break;
                        }
                    } else if tokens[k].is_punct(";") && bdepth == 0 {
                        end_line = tokens[k].line;
                        break;
                    }
                    k += 1;
                }
                if k >= tokens.len() {
                    end_line = tokens.last().map_or(attr_line, |t| t.line);
                }
                ranges.push((attr_line, end_line));
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_idents() {
        let toks = lex("let x == y != z :: w;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "==", "y", "!=", "z", "::", "w", ";"]);
    }

    #[test]
    fn distinguishes_int_and_float() {
        let toks = lex("a(1, 2.5, 0x10, 1e-3, 3f64, x.0)");
        let kinds: Vec<TokKind> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            [
                TokKind::Int,
                TokKind::Float,
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int
            ]
        );
    }

    #[test]
    fn string_contents_do_not_leak_tokens() {
        let toks = lex(r#"let s = "HashMap.iter() == 1.0"; t"#);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn raw_strings_and_chars() {
        let toks = lex(r##"let s = r#"a "quoted" x"#; let c = 'x'; let l: &'a str = s;"##);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn doc_comments_are_tokens_plain_comments_are_not() {
        let toks = lex("/// docs here\n// plain\npub fn f() {}\n//! inner\n");
        let outer: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::DocComment)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(outer, ["docs here"]);
        let inner: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::InnerDoc)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(inner, ["inner"]);
    }

    #[test]
    fn multi_hash_raw_strings_do_not_swallow_following_lines() {
        // regression: `r##"…"##` used to fall through to the ident path,
        // letting the string body open an ordinary `"` literal that ran to
        // the next quote — silently swallowing the following lines (and any
        // rule triggers on them)
        let src = "let s = r##\"contains \"# quote\"##;\nlet t = Instant::now();\n";
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("Instant") && t.line == 2));
        assert!(toks.iter().any(|t| t.is_ident("now")));
        // byte raw strings with multiple hashes take the same path
        let toks = lex("let b = br##\"x\"#y\"##; after");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn byte_string_literals_tokenize_as_one_str() {
        // regression: byte strings with escapes and hash-raw byte strings
        // must not leak their contents as tokens
        let src = "let a = b\"Hash\\\"Map\"; let b = br#\"iter()\"#; tail";
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(!toks.iter().any(|t| t.is_ident("iter")));
        assert!(toks.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn multi_byte_char_escapes_stay_inside_the_literal() {
        // regression: `'\x41'` used to leave `41` and a stray `';` behind,
        // desynchronizing everything after it on the line
        let src = "let c = '\\x41'; let u = '\\u{1F600}'; let b = b'\\xFF'; done";
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(|t| t.kind == TokKind::Int));
    }

    #[test]
    fn nested_block_comments_consume_exactly_their_extent() {
        let src = "/* a /* b \"not a string\" */ c */ fn after() {}\n/* x /* y */ z */ let i = Instant::now();";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(toks.iter().any(|t| t.is_ident("Instant") && t.line == 2));
        assert!(!toks.iter().any(|t| t.is_ident("b")));
        // `/**/` is a plain empty comment, not a doc comment
        let toks = lex("/**/ pub fn f() {}");
        assert!(!toks.iter().any(|t| t.kind == TokKind::DocComment));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn cfg_test_ranges_cover_module() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn x() {}\n}\n";
        let toks = lex(src);
        let ranges = test_line_ranges(&toks);
        assert_eq!(ranges, vec![(2, 5)]);
    }
}
