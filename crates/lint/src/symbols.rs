//! Workspace symbol table: which types implement which simulation traits.
//!
//! Built in **two passes** over every parsed file. Pass one registers raw
//! facts per `(crate, type)` key — struct field lists, `const`/`static`
//! numeric values (module-level and associated), and the impl blocks of
//! the simulation traits (`LogicalProcess`, `SaveState`, `InitialEvents`,
//! `Model`). Pass two resolves what needs cross-file knowledge: the
//! numeric value of each LP's declared `lookahead()` (a literal, or a
//! const that pass one registered from anywhere in the same crate) and the
//! field set `save()` provably reads.
//!
//! Impls found inside test files or `#[cfg(test)]` regions are skipped
//! entirely: rules never fire there, and test-only types frequently reuse
//! names (`RingNode` exists in three test modules), which would otherwise
//! collide in the table.

use crate::ast::{ConstDef, FnDef, Item, ItemKind, ParsedFile};
use crate::lexer::{Tok, TokKind};
use crate::rules::FileCtx;
use std::collections::BTreeMap;

/// What `save()` provably reads of the LP's state.
#[derive(Debug, Clone)]
pub struct SaveInfo {
    /// `save()` reads the whole value (`self.clone()`, `*self`, or a
    /// `self` method call the analysis cannot see through) — the field
    /// diff is vacuously satisfied.
    pub reads_all: bool,
    /// Field names read as `self.field` in the body.
    pub fields: Vec<String>,
    /// Line of the `fn save` definition (for messages).
    pub line: u32,
    /// File the impl lives in (for messages).
    pub file: String,
}

impl SaveInfo {
    /// True if rollback restores `field` (read by `save`, or the snapshot
    /// is the whole value).
    pub fn captures(&self, field: &str) -> bool {
        self.reads_all || self.fields.iter().any(|f| f == field)
    }
}

/// Everything known about one `(crate, type)` pair.
#[derive(Debug, Clone, Default)]
pub struct TypeEntry {
    /// Type has a non-test `impl LogicalProcess for …`.
    pub lp_impl: bool,
    /// `save()` analysis from a `SaveState` impl, if any.
    pub save: Option<SaveInfo>,
    /// Resolved numeric value of `fn lookahead` when it is a literal or a
    /// resolvable const.
    pub lookahead: Option<f64>,
    /// Declared struct fields (empty when the struct was not seen).
    pub fields: Vec<String>,
}

/// The cross-file symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    types: BTreeMap<(String, String), TypeEntry>,
    /// `(crate, NAME)` → value, for module-level consts; associated
    /// consts are keyed `(crate, "Type::NAME")`.
    consts: BTreeMap<(String, String), f64>,
}

/// One file's inputs to the build: its context, tokens, and parse.
pub struct FileInput<'a> {
    /// Path/crate/test classification.
    pub ctx: &'a FileCtx,
    /// Token stream.
    pub tokens: &'a [Tok],
    /// Parsed item tree.
    pub parsed: &'a ParsedFile,
}

impl SymbolTable {
    /// Builds the table from every file of the workspace (or a single file
    /// for fixture scans).
    pub fn build(files: &[FileInput<'_>]) -> SymbolTable {
        let mut table = SymbolTable::default();
        // pass 1: register structs, consts, and raw impl facts
        struct PendingLookahead {
            krate: String,
            ty: String,
            body: std::ops::Range<usize>,
            file_idx: usize,
        }
        let mut pending: Vec<PendingLookahead> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            table.collect_items(f, &f.parsed.items, fi, &mut |krate, ty, body, idx| {
                pending.push(PendingLookahead {
                    krate,
                    ty,
                    body,
                    file_idx: idx,
                });
            });
        }
        // pass 2: resolve lookahead bodies against the now-complete const
        // table
        for p in pending {
            let toks = files[p.file_idx].tokens;
            let val = table.resolve_expr(&p.krate, Some(&p.ty), toks, p.body.clone());
            if let Some(v) = val {
                table.types.entry((p.krate, p.ty)).or_default().lookahead = Some(v);
            }
        }
        table
    }

    /// Looks up a type entry.
    pub fn type_entry(&self, krate: &str, ty: &str) -> Option<&TypeEntry> {
        self.types.get(&(krate.to_string(), ty.to_string()))
    }

    /// Resolves a const by name within a crate (associated consts use the
    /// `"Type::NAME"` form).
    pub fn const_value(&self, krate: &str, name: &str) -> Option<f64> {
        self.consts
            .get(&(krate.to_string(), name.to_string()))
            .copied()
    }

    /// A stable fingerprint over the table contents; cached findings are
    /// invalidated when any impl/const the rules depend on changes.
    pub fn fingerprint(&self) -> u64 {
        let mut dump = String::new();
        for ((k, t), e) in &self.types {
            dump.push_str(k);
            dump.push('/');
            dump.push_str(t);
            dump.push(':');
            dump.push_str(&format!(
                "lp={} la={:?} save={:?} fields={:?};",
                e.lp_impl,
                e.lookahead,
                e.save.as_ref().map(|s| (s.reads_all, s.fields.clone())),
                e.fields
            ));
        }
        for ((k, n), v) in &self.consts {
            dump.push_str(&format!("{k}.{n}={v};"));
        }
        fnv64(dump.as_bytes())
    }

    /// Walks one file's item tree, registering facts. `on_lookahead` defers
    /// lookahead-body resolution to pass two.
    fn collect_items(
        &mut self,
        f: &FileInput<'_>,
        items: &[Item],
        file_idx: usize,
        on_lookahead: &mut dyn FnMut(String, String, std::ops::Range<usize>, usize),
    ) {
        let krate = f.ctx.crate_name.clone();
        for item in items {
            match &item.kind {
                ItemKind::Struct(s) => {
                    if f.ctx.in_test(s.line) {
                        continue;
                    }
                    let e = self
                        .types
                        .entry((krate.clone(), s.name.clone()))
                        .or_default();
                    if e.fields.is_empty() {
                        e.fields = s.fields.iter().map(|fd| fd.name.clone()).collect();
                    }
                }
                ItemKind::Const(c) => {
                    if f.ctx.in_test(c.line) {
                        continue;
                    }
                    self.register_const(&krate, None, c, f.tokens);
                }
                ItemKind::Impl(imp) => {
                    if f.ctx.in_test(imp.line) {
                        continue;
                    }
                    for c in &imp.consts {
                        self.register_const(&krate, Some(&imp.type_name), c, f.tokens);
                    }
                    match imp.trait_name.as_deref() {
                        Some("LogicalProcess") => {
                            self.types
                                .entry((krate.clone(), imp.type_name.clone()))
                                .or_default()
                                .lp_impl = true;
                            if let Some(la) = imp.fns.iter().find(|fun| fun.name == "lookahead") {
                                if let Some(body) = &la.body {
                                    on_lookahead(
                                        krate.clone(),
                                        imp.type_name.clone(),
                                        body.span.clone(),
                                        file_idx,
                                    );
                                }
                            }
                        }
                        Some("SaveState") => {
                            if let Some(save) = imp.fns.iter().find(|fun| fun.name == "save") {
                                let info = analyze_save(save, f.tokens, &f.ctx.rel_path);
                                let e = self
                                    .types
                                    .entry((krate.clone(), imp.type_name.clone()))
                                    .or_default();
                                e.save = Some(info);
                            } else {
                                // SaveState impl without a parsed save body
                                // (macro-generated?): conservatively treat
                                // as full-state so the diff never fires
                                let e = self
                                    .types
                                    .entry((krate.clone(), imp.type_name.clone()))
                                    .or_default();
                                e.save = Some(SaveInfo {
                                    reads_all: true,
                                    fields: Vec::new(),
                                    line: imp.line,
                                    file: f.ctx.rel_path.clone(),
                                });
                            }
                        }
                        _ => {}
                    }
                }
                ItemKind::Mod(_, nested) => {
                    self.collect_items(f, nested, file_idx, on_lookahead);
                }
                _ => {}
            }
        }
    }

    fn register_const(&mut self, krate: &str, ty: Option<&str>, c: &ConstDef, toks: &[Tok]) {
        let Some(v) = literal_value(toks, c.value.clone()) else {
            return;
        };
        let name = match ty {
            Some(t) => format!("{t}::{}", c.name),
            None => c.name.clone(),
        };
        self.consts.insert((krate.to_string(), name), v);
        // associated consts are also reachable as `Self::NAME` from inside
        // the impl; the resolver tries the qualified form first
    }

    /// Resolves a single-expression span to a number: a literal, a const
    /// name, `Self::NAME`, or `Type::NAME`.
    pub fn resolve_expr(
        &self,
        krate: &str,
        self_ty: Option<&str>,
        toks: &[Tok],
        span: std::ops::Range<usize>,
    ) -> Option<f64> {
        if let Some(v) = literal_value(toks, span.clone()) {
            return Some(v);
        }
        let inner: Vec<&Tok> = toks[span]
            .iter()
            .filter(|t| !t.is_punct("(") && !t.is_punct(")"))
            .collect();
        match inner.as_slice() {
            [t] if t.kind == TokKind::Ident => {
                let name = t.text.as_str();
                self.const_value(krate, name).or_else(|| {
                    self_ty.and_then(|ty| self.const_value(krate, &format!("{ty}::{name}")))
                })
            }
            [a, sep, b]
                if a.kind == TokKind::Ident && sep.is_punct("::") && b.kind == TokKind::Ident =>
            {
                let scope = if a.is_ident("Self") {
                    self_ty.map(str::to_string)
                } else {
                    Some(a.text.clone())
                };
                scope.and_then(|s| self.const_value(krate, &format!("{s}::{}", b.text)))
            }
            _ => None,
        }
    }
}

/// Parses a literal span (`1.0`, `0.5f64`, `- 0.25`, `3`) to f64.
fn literal_value(toks: &[Tok], span: std::ops::Range<usize>) -> Option<f64> {
    let inner: Vec<&Tok> = toks[span]
        .iter()
        .filter(|t| !t.is_punct("(") && !t.is_punct(")"))
        .collect();
    let (neg, lit) = match inner.as_slice() {
        [l] => (false, *l),
        [m, l] if m.is_punct("-") => (true, *l),
        _ => return None,
    };
    if !matches!(lit.kind, TokKind::Float | TokKind::Int) {
        return None;
    }
    let text = lit
        .text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("usize")
        .trim_end_matches('_')
        .replace('_', "");
    let v: f64 = text.parse().ok()?;
    Some(if neg { -v } else { v })
}

/// Extracts the field-read set of a `save()` body: every `self.field`
/// mention that is not a method call. A bare `self` (`self.clone()`,
/// `*self`, `Self::Saved::from(self)`) or any `self.method(…)` call makes
/// the analysis conservative: `reads_all`.
fn analyze_save(save: &FnDef, toks: &[Tok], file: &str) -> SaveInfo {
    let mut fields = Vec::new();
    let mut reads_all = false;
    if let Some(body) = &save.body {
        let span = body.span.clone();
        let mut i = span.start;
        while i < span.end {
            if toks[i].is_ident("self") {
                if toks.get(i + 1).is_some_and(|t| t.is_punct(".")) {
                    if let Some(f) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                        if toks.get(i + 3).is_some_and(|t| t.is_punct("(")) {
                            // `self.m()` — a method; it can read anything
                            reads_all = true;
                        } else if !fields.contains(&f.text) {
                            fields.push(f.text.clone());
                        }
                        i += 3;
                        continue;
                    }
                } else {
                    // bare `self`: passed/cloned/dereferenced as a whole
                    reads_all = true;
                }
            }
            i += 1;
        }
    } else {
        reads_all = true;
    }
    SaveInfo {
        reads_all,
        fields,
        line: save.line,
        file: file.to_string(),
    }
}

/// FNV-1a 64-bit — the content hash for the incremental cache and the
/// symbol-table fingerprint (dependency-free and deterministic across
/// runs, unlike `DefaultHasher`).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn ctx(path: &str, krate: &str) -> FileCtx {
        FileCtx {
            rel_path: path.to_string(),
            crate_name: krate.to_string(),
            is_test_file: false,
            test_lines: Vec::new(),
            order_sensitive: true,
            hot_path: false,
        }
    }

    fn build_one(src: &str) -> SymbolTable {
        let toks = lex(src);
        let parsed = parse(&toks);
        let c = ctx("crates/x/src/lib.rs", "lsds-x");
        SymbolTable::build(&[FileInput {
            ctx: &c,
            tokens: &toks,
            parsed: &parsed,
        }])
    }

    #[test]
    fn registers_save_field_reads() {
        let t = build_one(
            "struct Lp { fired: u64, skew: u64 }\n\
             impl SaveState for Lp {\n\
                 type Saved = u64;\n\
                 fn save(&self) -> u64 { self.fired }\n\
                 fn restore(&mut self, s: u64) { self.fired = s; }\n\
             }",
        );
        let e = t.type_entry("lsds-x", "Lp").expect("Lp registered");
        let save = e.save.as_ref().expect("save analyzed");
        assert!(!save.reads_all);
        assert_eq!(save.fields, ["fired"]);
        assert!(save.captures("fired"));
        assert!(!save.captures("skew"));
    }

    #[test]
    fn clone_based_save_reads_all() {
        let t = build_one(
            "struct Lp { a: u64 }\n\
             impl SaveState for Lp { type Saved = Lp; fn save(&self) -> Lp { self.clone() } }",
        );
        let save = t.type_entry("lsds-x", "Lp").unwrap().save.as_ref().unwrap();
        assert!(save.reads_all);
        assert!(save.captures("anything"));
    }

    #[test]
    fn lookahead_resolves_literals_and_consts() {
        let t = build_one(
            "const LA: f64 = 0.25;\n\
             struct A; struct B; struct C;\n\
             impl LogicalProcess for A { fn lookahead(&self) -> f64 { 0.5 } }\n\
             impl LogicalProcess for B { fn lookahead(&self) -> f64 { LA } }\n\
             impl LogicalProcess for C { fn lookahead(&self) -> f64 { self.la } }",
        );
        assert_eq!(t.type_entry("lsds-x", "A").unwrap().lookahead, Some(0.5));
        assert_eq!(t.type_entry("lsds-x", "B").unwrap().lookahead, Some(0.25));
        assert_eq!(t.type_entry("lsds-x", "C").unwrap().lookahead, None);
    }

    #[test]
    fn assoc_consts_resolve_via_self() {
        let t = build_one(
            "struct A;\n\
             impl A { const LA: f64 = 2.0; }\n\
             impl LogicalProcess for A { fn lookahead(&self) -> f64 { Self::LA } }",
        );
        assert_eq!(t.type_entry("lsds-x", "A").unwrap().lookahead, Some(2.0));
    }

    #[test]
    fn test_region_impls_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n\
             struct Lp { a: u64 }\n\
             impl LogicalProcess for Lp { fn lookahead(&self) -> f64 { 1.0 } }\n\
        }";
        let toks = lex(src);
        let parsed = parse(&toks);
        let mut c = ctx("crates/x/src/lib.rs", "lsds-x");
        c.test_lines = crate::lexer::test_line_ranges(&toks);
        let t = SymbolTable::build(&[FileInput {
            ctx: &c,
            tokens: &toks,
            parsed: &parsed,
        }]);
        assert!(t.type_entry("lsds-x", "Lp").is_none());
    }

    #[test]
    fn fingerprint_changes_with_contents() {
        let a = build_one("const LA: f64 = 0.25;");
        let b = build_one("const LA: f64 = 0.5;");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
