//! Workspace lint configuration.
//!
//! Loaded from `lsds-lint.json` at the workspace root (the same in-tree
//! JSON dialect `lsds-trace` reads and writes — the workspace builds
//! offline, so there is no TOML parser to lean on). Everything has
//! defaults tuned to this repository; a missing file means "defaults".
//!
//! ```json
//! {
//!   "order_sensitive_crates": ["lsds-core", "lsds-net"],
//!   "hot_paths": ["crates/core/src/queue/", "crates/net/src/flow.rs"],
//!   "exclude": ["crates/lint/tests/fixtures/"],
//!   "severity": { "float-eq": "warn" },
//!   "crates": { "lsds-bench": { "wall-clock": "off" } }
//! }
//! ```

use crate::rules::{self, Severity};
use lsds_trace::Json;

/// Resolved lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates where `HashMap`/`HashSet` iteration order can leak into event
    /// order (rule `hash-iter` only fires inside these).
    pub order_sensitive_crates: Vec<String>,
    /// Path prefixes (or exact files) forming the engine hot paths (rules
    /// `hot-path-panic` and `hot-path-vec` only fire inside these).
    pub hot_paths: Vec<String>,
    /// Path prefixes never scanned (lint fixtures, generated code).
    pub exclude: Vec<String>,
    /// Workspace-wide severity overrides, `(rule id, severity)`.
    pub severity: Vec<(String, Severity)>,
    /// Per-crate severity overrides, `(crate name, rule id, severity)`.
    /// These win over the workspace-wide table.
    pub per_crate: Vec<(String, String, Severity)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            order_sensitive_crates: [
                "lsds-core",
                "lsds-net",
                "lsds-grid",
                "lsds-parallel",
                "lsds-simulators",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            hot_paths: [
                "crates/core/src/queue/",
                "crates/core/src/engine/",
                "crates/parallel/src/",
                "crates/prof/src/",
                "crates/net/src/flow.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            exclude: vec!["crates/lint/tests/fixtures/".to_string()],
            severity: Vec::new(),
            per_crate: Vec::new(),
        }
    }
}

/// A configuration error: where it came from and what was wrong.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn parse_severity(s: &str) -> Result<Severity, ConfigError> {
    match s {
        "off" => Ok(Severity::Off),
        "warn" => Ok(Severity::Warn),
        "error" => Ok(Severity::Error),
        other => Err(ConfigError(format!(
            "unknown severity {other:?} (expected off|warn|error)"
        ))),
    }
}

fn string_list(v: &Json, what: &str) -> Result<Vec<String>, ConfigError> {
    match v {
        Json::Arr(items) => items
            .iter()
            .map(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ConfigError(format!("{what} entries must be strings")))
            })
            .collect(),
        _ => Err(ConfigError(format!("{what} must be an array of strings"))),
    }
}

fn severity_table(v: &Json, what: &str) -> Result<Vec<(String, Severity)>, ConfigError> {
    let Json::Obj(fields) = v else {
        return Err(ConfigError(format!("{what} must be an object")));
    };
    let mut out = Vec::new();
    for (rule, sev) in fields {
        if !rules::is_known_rule(rule) {
            return Err(ConfigError(format!("{what}: unknown rule id {rule:?}")));
        }
        let s = sev
            .as_str()
            .ok_or_else(|| ConfigError(format!("{what}.{rule} must be a string")))?;
        out.push((rule.clone(), parse_severity(s)?));
    }
    Ok(out)
}

impl Config {
    /// Parses a configuration document, filling absent fields with the
    /// defaults.
    pub fn from_json(doc: &Json) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let Json::Obj(fields) = doc else {
            return Err(ConfigError("top level must be an object".to_string()));
        };
        for (key, value) in fields {
            match key.as_str() {
                "order_sensitive_crates" => {
                    cfg.order_sensitive_crates = string_list(value, key)?;
                }
                "hot_paths" => cfg.hot_paths = string_list(value, key)?,
                "exclude" => cfg.exclude = string_list(value, key)?,
                "severity" => cfg.severity = severity_table(value, key)?,
                "crates" => {
                    let Json::Obj(crates) = value else {
                        return Err(ConfigError("crates must be an object".to_string()));
                    };
                    let mut out = Vec::new();
                    for (krate, table) in crates {
                        for (rule, sev) in severity_table(table, krate)? {
                            out.push((krate.clone(), rule, sev));
                        }
                    }
                    cfg.per_crate = out;
                }
                other => {
                    return Err(ConfigError(format!("unknown config key {other:?}")));
                }
            }
        }
        Ok(cfg)
    }

    /// Loads `path` if it exists, defaults otherwise.
    pub fn load(path: &std::path::Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let doc = Json::parse(&text)
                    .map_err(|e| ConfigError(format!("{}: {e}", path.display())))?;
                Config::from_json(&doc)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(ConfigError(format!("{}: {e}", path.display()))),
        }
    }

    /// Effective severity of `rule` for a file in `krate`: the per-crate
    /// override if any, else the workspace override, else the rule default.
    pub fn severity_for(&self, krate: &str, rule: &str) -> Severity {
        for (c, r, s) in &self.per_crate {
            if c == krate && r == rule {
                return *s;
            }
        }
        for (r, s) in &self.severity {
            if r == rule {
                return *s;
            }
        }
        rules::default_severity(rule)
    }

    /// True if `rel_path` (workspace-relative, `/`-separated) is under one
    /// of the configured prefixes.
    pub fn matches_any(rel_path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| rel_path.starts_with(p.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_missing() {
        let cfg = Config::load(std::path::Path::new("/nonexistent/lsds-lint.json")).unwrap();
        assert!(cfg.order_sensitive_crates.iter().any(|c| c == "lsds-core"));
    }

    #[test]
    fn parses_overrides() {
        let doc = Json::parse(
            r#"{"severity": {"float-eq": "warn"},
                "crates": {"lsds-bench": {"wall-clock": "off"}}}"#,
        )
        .unwrap();
        let cfg = Config::from_json(&doc).unwrap();
        assert_eq!(cfg.severity_for("lsds-core", "float-eq"), Severity::Warn);
        assert_eq!(cfg.severity_for("lsds-bench", "wall-clock"), Severity::Off);
        assert_ne!(cfg.severity_for("lsds-core", "wall-clock"), Severity::Off);
    }

    #[test]
    fn rejects_unknown_rule_and_severity() {
        let bad_rule = Json::parse(r#"{"severity": {"no-such-rule": "warn"}}"#).unwrap();
        assert!(Config::from_json(&bad_rule).is_err());
        let bad_sev = Json::parse(r#"{"severity": {"float-eq": "loud"}}"#).unwrap();
        assert!(Config::from_json(&bad_sev).is_err());
    }
}
