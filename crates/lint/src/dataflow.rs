//! Intra-function taint tracking for the `determinism-taint` rule.
//!
//! The token-level `hash-iter` rule sees `map.keys()` but not what happens
//! to the result; this pass follows nondeterminism through local bindings
//! until it reaches a scheduling sink:
//!
//! ```text
//! let ids: Vec<u64> = self.peers.keys().copied().collect();  // source
//! let order = ids;                                           // propagate
//! for p in order { ctx.schedule_in(0.1, Ev::Ping(p)); }      // sink → flag
//! ```
//!
//! Three taint kinds are tracked, because their sanitizers differ:
//! **hash-order** (cleared by a `.sort*()` call — sorted data no longer
//! depends on iteration order), **wall-clock**, and **ptr-cast** (value
//! nondeterminism; nothing local clears it).
//!
//! The analysis is a single in-order walk of the statement tree carrying a
//! name → taint map: `let`/`=` bind or clear, compound assignment
//! accumulates, `.push(tainted)` taints the receiver, `.sort*()`
//! sanitizes hash-order taint, and every scheduling call is checked
//! against the map as it stood at that statement. Loop bodies are walked
//! **twice**, so taint carried backward by iteration (`x` assigned at the
//! bottom, used in a sink at the top) is visible on the second pass. The
//! pass is deliberately biased toward reporting — it cannot prove
//! commutativity or branch feasibility — and the pragma escape hatch
//! documents the survivors.

use crate::ast::{Block, FnDef, Span, Stmt, StmtKind};
use crate::lexer::{Tok, TokKind};
use crate::rules::{finding, FileCtx, Finding, ITER_METHODS, SORT_METHODS};
use std::collections::BTreeMap;

/// Why a local is considered nondeterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// Derived from HashMap/HashSet iteration order.
    HashOrder,
    /// Derived from wall-clock time or OS entropy.
    WallClock,
    /// Derived from a pointer-to-integer cast (address-space layout).
    PtrCast,
}

impl TaintKind {
    fn describe(self) -> &'static str {
        match self {
            TaintKind::HashOrder => "HashMap/HashSet iteration order",
            TaintKind::WallClock => "a wall-clock/OS-entropy value",
            TaintKind::PtrCast => "a pointer-to-integer cast",
        }
    }
}

/// One tainted binding: where the nondeterminism entered.
#[derive(Debug, Clone)]
struct Taint {
    kind: TaintKind,
    source_line: u32,
}

type State = BTreeMap<String, Taint>;

/// Methods that fold their argument into the receiver — a tainted argument
/// taints the receiver collection.
const ABSORB_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
];

/// Scheduling/event-payload sinks: a tainted value reaching any argument
/// of these calls makes event content or order depend on the taint source.
const SINK_METHODS: &[&str] = &["schedule", "schedule_at", "schedule_in", "send", "send_at"];

/// Receiver accessors that do *not* depend on iteration order — a
/// hash-order-tainted name used only through these is deterministic.
const ORDER_FREE: &[&str] = &[
    "len",
    "count",
    "is_empty",
    "contains",
    "contains_key",
    "get",
];

/// Runs the determinism-taint analysis over one function body.
pub fn check_fn(ctx: &FileCtx, toks: &[Tok], f: &FnDef, out: &mut Vec<Finding>) {
    let Some(body) = &f.body else { return };
    let hash_names = crate::rules::hash_typed_names(toks);
    let mut state = State::new();
    let mut hits: Vec<(u32, String, Taint)> = Vec::new();
    walk_block(body, toks, &hash_names, &mut state, &mut hits);
    hits.sort_by(|a, b| (a.0, a.1.as_str()).cmp(&(b.0, b.1.as_str())));
    hits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    for (line, name, taint) in hits {
        if ctx.in_test(line) {
            continue;
        }
        out.push(finding(
            ctx,
            "determinism-taint",
            line,
            format!(
                "`{name}` carries {} (tainted at line {}) into a scheduling sink; \
                 event order/content now depends on a nondeterministic source — \
                 sort or canonicalize before scheduling",
                taint.kind.describe(),
                taint.source_line
            ),
        ));
    }
}

/// In-order walk: per statement, check sinks against the current state,
/// apply the statement's effects, then recurse into nested blocks (loop
/// bodies twice, to surface loop-carried taint).
fn walk_block(
    block: &Block,
    toks: &[Tok],
    hash_names: &[String],
    state: &mut State,
    hits: &mut Vec<(u32, String, Taint)>,
) {
    for stmt in &block.stmts {
        // sinks in the statement's own tokens — for block-bearing
        // statements only the header (before the first block), so inner
        // statements are judged by their own, possibly shadowed, state
        let header = match &stmt.kind {
            StmtKind::Expr { blocks } if !blocks.is_empty() => {
                stmt.span.start..blocks[0].span.start.saturating_sub(1)
            }
            StmtKind::For { iter, .. } => stmt.span.start..iter.end,
            _ => stmt.span.clone(),
        };
        check_sinks(toks, header.clone(), state, hits);
        apply_stmt(stmt, &header, toks, hash_names, state);
        match &stmt.kind {
            StmtKind::For { body, .. } => {
                walk_block(body, toks, hash_names, state, hits);
                walk_block(body, toks, hash_names, state, hits);
            }
            StmtKind::Expr { blocks } if !blocks.is_empty() => {
                let looping = toks
                    .get(stmt.span.start)
                    .is_some_and(|t| t.is_ident("loop") || t.is_ident("while"));
                for b in blocks {
                    walk_block(b, toks, hash_names, state, hits);
                }
                if looping {
                    for b in blocks {
                        walk_block(b, toks, hash_names, state, hits);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Applies one statement's *shallow* effects (nested blocks are handled by
/// the walk itself).
fn apply_stmt(stmt: &Stmt, header: &Span, toks: &[Tok], hash_names: &[String], state: &mut State) {
    match &stmt.kind {
        StmtKind::Let { names, init } => {
            let taint = init
                .as_ref()
                .and_then(|sp| span_taint(toks, sp.clone(), hash_names, state));
            for n in names {
                match &taint {
                    Some(t) => {
                        state.insert(n.clone(), t.clone());
                    }
                    None => {
                        // (re)binding to a clean value clears
                        state.remove(n);
                    }
                }
            }
            apply_effect_calls(toks, stmt.span.clone(), hash_names, state);
        }
        StmtKind::Assign {
            target,
            compound,
            value,
        } => {
            let taint = span_taint(toks, value.clone(), hash_names, state);
            if let Some(name) = target_name(toks, target.clone()) {
                match taint {
                    Some(t) => {
                        state.insert(name, t);
                    }
                    None if !*compound => {
                        // `x = clean` replaces the value outright
                        state.remove(&name);
                    }
                    None => {}
                }
            }
        }
        StmtKind::For { vars, iter, .. } => {
            if let Some(t) = span_taint(toks, iter.clone(), hash_names, state) {
                for v in vars {
                    state.insert(v.clone(), t.clone());
                }
            }
        }
        StmtKind::Expr { .. } => {
            apply_effect_calls(toks, header.clone(), hash_names, state);
        }
        StmtKind::Item(_) => {}
    }
}

/// Finds `recv . sink_method ( args )` in `span` and records tainted
/// arguments.
fn check_sinks(toks: &[Tok], span: Span, state: &State, hits: &mut Vec<(u32, String, Taint)>) {
    let end = span.end.min(toks.len());
    let mut i = span.start;
    while i + 2 < end {
        if toks[i].is_punct(".")
            && toks[i + 1].kind == TokKind::Ident
            && SINK_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct("(")
        {
            let args = paren_span(toks, i + 2);
            if let Some((name, t)) = tainted_mention(toks, args.clone(), state) {
                hits.push((toks[i + 1].line, name, t));
            }
            i = args.end;
            continue;
        }
        i += 1;
    }
}

/// Applies collection-level effects found anywhere in `span`:
/// `x.sort*()` clears hash-order taint on `x`; `x.push(tainted)` and
/// friends taint `x`.
fn apply_effect_calls(toks: &[Tok], span: Span, hash_names: &[String], state: &mut State) {
    let end = span.end.min(toks.len());
    for i in span.start..end {
        if i + 3 >= toks.len()
            || toks[i].kind != TokKind::Ident
            || !toks[i + 1].is_punct(".")
            || toks[i + 2].kind != TokKind::Ident
            || !toks[i + 3].is_punct("(")
        {
            continue;
        }
        let recv = &toks[i].text;
        let m = toks[i + 2].text.as_str();
        if SORT_METHODS.contains(&m) {
            if state
                .get(recv)
                .is_some_and(|t| t.kind == TaintKind::HashOrder)
            {
                state.remove(recv);
            }
        } else if ABSORB_METHODS.contains(&m) {
            let args = paren_span(toks, i + 3);
            if let Some(t) = span_taint(toks, args, hash_names, state) {
                state.insert(recv.clone(), t);
            }
        }
    }
}

/// Token span of a paren group's interior, given the index of `(`.
fn paren_span(toks: &[Tok], open: usize) -> Span {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return open + 1..j;
            }
        }
    }
    open + 1..toks.len()
}

/// The root local name of an assignment target (`x`, `x[i]`, `x.f` → `x`;
/// `self.f` → the composite `self.f` so struct fields track separately).
fn target_name(toks: &[Tok], span: Span) -> Option<String> {
    let inner: Vec<&Tok> = toks[span.start..span.end.min(toks.len())]
        .iter()
        .filter(|t| !t.is_punct("*") && !t.is_punct("&") && !t.is_ident("mut"))
        .collect();
    let first = inner.first().filter(|t| t.kind == TokKind::Ident)?;
    if first.is_ident("self")
        && inner.get(1).is_some_and(|t| t.is_punct("."))
        && inner.get(2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        return Some(format!("self.{}", inner[2].text));
    }
    Some(first.text.clone())
}

/// Does this span *produce* a tainted value? Checks direct sources first,
/// then mentions of already-tainted names.
fn span_taint(toks: &[Tok], span: Span, hash_names: &[String], state: &State) -> Option<Taint> {
    if let Some(t) = span_source(toks, span.clone(), hash_names) {
        return Some(t);
    }
    tainted_mention(toks, span, state).map(|(_, t)| t)
}

/// Direct nondeterminism sources inside a span.
fn span_source(toks: &[Tok], span: Span, hash_names: &[String]) -> Option<Taint> {
    let end = span.end.min(toks.len());
    let mut saw_ptr_cast = false;
    for i in span.start..end {
        let t = &toks[i];
        let line = t.line;
        // hash-order: an `.iter()`-family call on a hash-typed name, or
        // the bare collection in an iterated/argument position; order-free
        // accessors (`map.len()`, `map.get(k)`) stay clean
        if t.kind == TokKind::Ident && hash_names.binary_search(&t.text).is_ok() {
            let next_dot = toks.get(i + 1).is_some_and(|n| n.is_punct("."));
            let method = toks.get(i + 2).map(|n| n.text.as_str());
            if next_dot {
                if method.is_some_and(|m| ITER_METHODS.contains(&m)) {
                    return Some(Taint {
                        kind: TaintKind::HashOrder,
                        source_line: line,
                    });
                }
            } else if !toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
                // bare mention (not a path segment, not a field/method
                // access): the collection itself flows — `for v in &map`,
                // `collect_from(&map)`
                return Some(Taint {
                    kind: TaintKind::HashOrder,
                    source_line: line,
                });
            }
            let _ = ORDER_FREE; // non-iter accessors fall through un-flagged
        }
        // wall-clock / OS entropy
        if (t.is_ident("SystemTime") && toks.get(i + 1).is_some_and(|n| n.is_punct("::")))
            || (t.is_ident("Instant")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now")))
            || t.is_ident("RandomState")
            || t.is_ident("thread_rng")
            || t.is_ident("from_entropy")
        {
            return Some(Taint {
                kind: TaintKind::WallClock,
                source_line: line,
            });
        }
        // pointer-to-int: `… as *const T as usize` or `.as_ptr() as u64`
        if t.is_ident("as") && toks.get(i + 1).is_some_and(|n| n.is_punct("*")) {
            saw_ptr_cast = true;
        }
        if t.is_ident("as_ptr")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(")"))
        {
            saw_ptr_cast = true;
        }
        if saw_ptr_cast
            && t.is_ident("as")
            && toks.get(i + 1).is_some_and(|n| {
                matches!(
                    n.text.as_str(),
                    "usize" | "u64" | "u32" | "u128" | "i64" | "isize"
                )
            })
        {
            return Some(Taint {
                kind: TaintKind::PtrCast,
                source_line: line,
            });
        }
    }
    None
}

/// First mention of an already-tainted name in `span` that actually uses
/// the nondeterministic aspect (hash-order taint read through `.len()`
/// and friends does not count).
fn tainted_mention(toks: &[Tok], span: Span, state: &State) -> Option<(String, Taint)> {
    let end = span.end.min(toks.len());
    let mut i = span.start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            // `self.f` composite names
            let (name, width) = if t.is_ident("self")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            {
                (format!("self.{}", toks[i + 2].text), 3)
            } else {
                (t.text.clone(), 1)
            };
            if let Some(taint) = state.get(&name) {
                let order_free = taint.kind == TaintKind::HashOrder
                    && toks.get(i + width).is_some_and(|n| n.is_punct("."))
                    && toks
                        .get(i + width + 1)
                        .is_some_and(|n| ORDER_FREE.contains(&n.text.as_str()));
                if !order_free {
                    return Some((name, taint.clone()));
                }
            }
            i += width;
            continue;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{parse, ItemKind};
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let parsed = parse(&toks);
        let ctx = FileCtx {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_name: "lsds-x".into(),
            is_test_file: false,
            test_lines: Vec::new(),
            order_sensitive: true,
            hot_path: false,
        };
        let mut out = Vec::new();
        for item in &parsed.items {
            if let ItemKind::Fn(f) = &item.kind {
                check_fn(&ctx, &toks, f, &mut out);
            }
        }
        out
    }

    #[test]
    fn laundered_hash_iteration_reaches_sink() {
        let f = run("fn f(ctx: &mut Ctx, peers: HashMap<u64, Peer>) {\n\
                let ids: Vec<u64> = peers.keys().copied().collect();\n\
                let order = ids;\n\
                for p in order { ctx.schedule_in(0.1, Ev::Ping(p)); }\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "determinism-taint");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn sorting_sanitizes_hash_order() {
        let f = run("fn f(ctx: &mut Ctx, peers: HashMap<u64, Peer>) {\n\
                let mut ids: Vec<u64> = peers.keys().copied().collect();\n\
                ids.sort_unstable();\n\
                for p in ids { ctx.schedule_in(0.1, Ev::Ping(p)); }\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sorting_does_not_sanitize_wall_clock() {
        let f = run("fn f(ctx: &mut Ctx) {\n\
                let mut ts = vec![Instant::now()];\n\
                ts.sort();\n\
                ctx.send(1, 0.5, Ev::Stamp(ts));\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn ptr_cast_taints_payload() {
        let f = run("fn f(ctx: &mut Ctx, job: &Job) {\n\
                let key = job as *const Job as usize;\n\
                ctx.schedule_in(0.1, Ev::Key(key));\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn reassignment_clears_taint() {
        let f = run("fn f(ctx: &mut Ctx, peers: HashMap<u64, Peer>) {\n\
                let mut x: Vec<u64> = peers.keys().copied().collect();\n\
                x = vec![1, 2, 3];\n\
                ctx.send(1, 0.5, Ev::Ids(x));\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn compound_assignment_accumulates() {
        let f = run("fn f(ctx: &mut Ctx, m: HashMap<u64, u64>) {\n\
                let mut acc = 0u64;\n\
                for v in m.values() { acc += v; }\n\
                ctx.send(1, 0.5, Ev::Acc(acc));\n\
             }");
        // `acc += v` with v hash-order tainted keeps acc tainted into the
        // sink (commutative-sum false positive by design: the analysis
        // cannot prove commutativity, pragma it when intended)
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn absorb_methods_taint_the_collection() {
        let f = run("fn f(ctx: &mut Ctx, m: HashMap<u64, u64>) {\n\
                let mut out = Vec::new();\n\
                for v in m.values() { out.push(v); }\n\
                ctx.send(1, 0.5, Ev::All(out));\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn order_free_accessors_do_not_fire() {
        let f = run("fn f(ctx: &mut Ctx, m: HashMap<u64, u64>) {\n\
                ctx.schedule_in(0.1, Ev::Count(m.len()));\n\
                if m.contains_key(&7) { ctx.send(1, 0.5, Ev::Seen); }\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn loop_carried_taint_is_seen_above_the_assignment() {
        let f = run("fn f(ctx: &mut Ctx, m: HashMap<u64, u64>) {\n\
                let mut x = 0u64;\n\
                loop {\n\
                    ctx.send(1, 0.5, Ev::V(x));\n\
                    x = first_value(&m);\n\
                }\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn shadowed_inner_binding_stays_clean() {
        let f = run("fn f(ctx: &mut Ctx, m: HashMap<u64, u64>) {\n\
                let x: Vec<u64> = m.keys().copied().collect();\n\
                if flip() {\n\
                    let x = 3u64;\n\
                    ctx.send(1, 0.5, Ev::V(x));\n\
                }\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                fn f(ctx: &mut Ctx, m: HashMap<u64, u64>) {\n\
                    let v: Vec<u64> = m.keys().copied().collect();\n\
                    ctx.send(1, 0.5, Ev::Ids(v));\n\
                }\n\
             }";
        let toks = lex(src);
        let parsed = parse(&toks);
        let ctx = FileCtx {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_name: "lsds-x".into(),
            is_test_file: false,
            test_lines: crate::lexer::test_line_ranges(&toks),
            order_sensitive: true,
            hot_path: false,
        };
        let mut out = Vec::new();
        fn visit(items: &[crate::ast::Item], ctx: &FileCtx, toks: &[Tok], out: &mut Vec<Finding>) {
            for it in items {
                match &it.kind {
                    ItemKind::Fn(f) => check_fn(ctx, toks, f, out),
                    ItemKind::Mod(_, nested) => visit(nested, ctx, toks, out),
                    _ => {}
                }
            }
        }
        visit(&parsed.items, &ctx, &toks, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
