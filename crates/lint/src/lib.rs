//! `lsds-lint` — determinism & hot-path static analysis for the workspace.
//!
//! §5 of the reproduced paper names *validation* as the open problem for
//! LSDS simulators. This workspace's strongest validated property is
//! bit-identical reproducibility — monitored, faulty, and parallel runs
//! match their baselines exactly — and that property is easy to break
//! silently: one `HashMap` iteration feeding event order, one wall-clock
//! read, one ULP-fragile float comparison. `lsds-lint` machine-checks the
//! failure modes on every PR instead of leaving them to debugging:
//!
//! | rule | protects |
//! |---|---|
//! | `hash-iter` | event order against hash-iteration order |
//! | `wall-clock` | reproducibility against OS time/entropy |
//! | `float-eq` | time comparisons against ULP drift |
//! | `hot-path-panic` | engine hot paths against release panics |
//! | `hot-path-vec` | hot paths against `remove(0)` / non-total sorts |
//! | `missing-docs` | the public API against undocumented drift |
//!
//! The crate is dependency-free by construction (the workspace builds
//! offline): [`lexer`] is a hand-rolled Rust tokenizer, [`rules`] the rule
//! engine, [`scan`] the walker + suppression-pragma layer, [`config`] the
//! `lsds-lint.json` loader, and [`report`] the JSON export through
//! `lsds-trace`. The binary (`cargo run -p lsds-lint -- --deny`) is the CI
//! gate; suppressions are inline pragmas that *must* carry a reason.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod config;
pub mod dataflow;
pub mod incremental;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod sem;
pub mod symbols;

pub use config::Config;
pub use rules::{Finding, Severity};
