//! Semantic rules: the analyses that need the AST and the symbol table.
//!
//! Three rule families run here, all specific to PDES correctness:
//!
//! - **determinism-taint** — the [`crate::dataflow`] pass over every fn
//!   body in order-sensitive crates, catching nondeterminism laundered
//!   through locals into scheduling sinks.
//! - **rollback-safety** — inside `handle` bodies of types that also
//!   implement `SaveState`, anything Time Warp cannot undo: interior
//!   mutability, I/O macros, and writes to fields `save()` provably never
//!   reads (those survive a rollback with post-rollback values — the
//!   silent-corruption case the Erlang PDES literature warns about).
//! - **lookahead-contract** — `ctx.send(dst, delay, msg)` where both the
//!   delay and the LP's declared `lookahead()` resolve to constants and
//!   `delay < lookahead`: the runtime `assert!` in `LpCtx::send` would
//!   fire on the first call, so the lint catches it at review time.

use crate::ast::{FnDef, ImplDef, Item, ItemKind, ParsedFile, Span};
use crate::lexer::{Tok, TokKind};
use crate::rules::{finding, FileCtx, Finding};
use crate::symbols::{SaveInfo, SymbolTable};

/// Interior-mutability types that bypass `&mut self` and therefore bypass
/// the save/restore snapshot.
const INTERIOR_MUT: &[&str] = &["RefCell", "Cell", "Mutex", "RwLock"];

/// Macros that perform I/O — unrollbackable side effects in a handler.
const IO_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "dbg", "write", "writeln",
];

/// Methods that mutate their receiver (for `self.field.push(…)`-style
/// writes).
const MUTATOR_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "clear",
    "extend",
    "append",
    "drain",
    "retain",
    "truncate",
    "take",
    "replace",
    "set",
    "swap",
    "sort",
    "sort_unstable",
];

/// Runs all semantic rules over one parsed file.
pub fn check_sem(
    ctx: &FileCtx,
    toks: &[Tok],
    parsed: &ParsedFile,
    symtab: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    visit_items(&parsed.items, ctx, toks, symtab, out);
}

fn visit_items(
    items: &[Item],
    ctx: &FileCtx,
    toks: &[Tok],
    symtab: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) => taint_fn(ctx, toks, f, out),
            ItemKind::Trait(t) => {
                for f in &t.fns {
                    taint_fn(ctx, toks, f, out);
                }
            }
            ItemKind::Impl(imp) => {
                for f in &imp.fns {
                    taint_fn(ctx, toks, f, out);
                }
                rollback_safety(ctx, toks, imp, symtab, out);
                lookahead_contract(ctx, toks, imp, symtab, out);
            }
            ItemKind::Mod(_, nested) => visit_items(nested, ctx, toks, symtab, out),
            _ => {}
        }
    }
}

/// determinism-taint: dataflow over one fn body (order-sensitive crates
/// only; per-line test exemption happens inside the pass).
fn taint_fn(ctx: &FileCtx, toks: &[Tok], f: &FnDef, out: &mut Vec<Finding>) {
    if !ctx.order_sensitive {
        return;
    }
    crate::dataflow::check_fn(ctx, toks, f, out);
}

// ---------------------------------------------------------- rollback-safety

/// rollback-safety over one `impl LogicalProcess for T` block, active only
/// when `T` also implements `SaveState` (i.e. it runs under Time Warp and
/// its `handle` effects must be undoable).
fn rollback_safety(
    ctx: &FileCtx,
    toks: &[Tok],
    imp: &ImplDef,
    symtab: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    if imp.trait_name.as_deref() != Some("LogicalProcess") {
        return;
    }
    let Some(entry) = symtab.type_entry(&ctx.crate_name, &imp.type_name) else {
        return;
    };
    let Some(save) = &entry.save else { return };
    let Some(handle) = imp.fns.iter().find(|f| f.name == "handle") else {
        return;
    };
    let Some(body) = &handle.body else { return };
    let span = body.span.clone();
    let ty = &imp.type_name;

    let mut reported: Vec<(u32, String)> = Vec::new();
    let mut report = |out: &mut Vec<Finding>, line: u32, key: String, msg: String| {
        if ctx.in_test(line) || reported.contains(&(line, key.clone())) {
            return;
        }
        reported.push((line, key));
        out.push(finding(ctx, "rollback-safety", line, msg));
    };

    let end = span.end.min(toks.len());
    let mut i = span.start;
    while i < end {
        let t = &toks[i];
        // interior mutability
        if t.kind == TokKind::Ident && INTERIOR_MUT.contains(&t.text.as_str()) {
            report(
                out,
                t.line,
                format!("im:{}", t.text),
                format!(
                    "`{}` inside `{ty}::handle` bypasses the SaveState snapshot; \
                     Time Warp rollback cannot undo mutations made through it",
                    t.text
                ),
            );
        }
        // `static mut`
        if t.is_ident("static") && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            report(
                out,
                t.line,
                "static-mut".to_string(),
                format!(
                    "`static mut` inside `{ty}::handle` is shared state outside the \
                     SaveState snapshot; rollback cannot undo writes to it"
                ),
            );
        }
        // I/O macros
        if t.kind == TokKind::Ident
            && IO_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            report(
                out,
                t.line,
                format!("io:{}", t.text),
                format!(
                    "`{}!` inside `{ty}::handle` performs I/O that rollback cannot \
                     retract; buffer output and flush at commit (GVT) time instead",
                    t.text
                ),
            );
        }
        // field writes: `self.f = …` / `self.f op= …` / `self.f.mutator(…)`
        // / `&mut self.f`
        if t.is_ident("self")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let fname = toks[i + 2].text.clone();
            let written = match toks.get(i + 3) {
                Some(n) if n.kind == TokKind::Punct && is_assign_op(&n.text) => true,
                Some(n) if n.is_punct(".") => {
                    toks.get(i + 4)
                        .is_some_and(|m| MUTATOR_METHODS.contains(&m.text.as_str()))
                        && toks.get(i + 5).is_some_and(|p| p.is_punct("("))
                }
                _ => i >= 2 && toks[i - 2].is_punct("&") && toks[i - 1].is_ident("mut"),
            };
            if written && !save.captures(&fname) {
                report(
                    out,
                    toks[i + 2].line,
                    format!("field:{fname}"),
                    unsaved_field_msg(ty, &fname, save),
                );
            }
            i += 3;
            continue;
        }
        i += 1;
    }
}

fn unsaved_field_msg(ty: &str, field: &str, save: &SaveInfo) -> String {
    format!(
        "`{ty}::handle` writes `self.{field}`, but `save()` ({}:{}) never reads \
         it — rollback restores the other fields and leaves `{field}` at its \
         post-rollback value, silently corrupting re-execution",
        save.file, save.line
    )
}

/// `=` and the compound-assignment operators (not `==`/`<=`/`>=`/`!=`).
fn is_assign_op(p: &str) -> bool {
    matches!(
        p,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
    )
}

// ------------------------------------------------------- lookahead-contract

/// lookahead-contract over one impl block: if the self type's declared
/// lookahead resolves to a constant, every `.send(dst, delay, msg)` /
/// `.send_at(dst, delay, msg)` whose delay also resolves must satisfy
/// `delay >= lookahead`.
fn lookahead_contract(
    ctx: &FileCtx,
    toks: &[Tok],
    imp: &ImplDef,
    symtab: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    let Some(entry) = symtab.type_entry(&ctx.crate_name, &imp.type_name) else {
        return;
    };
    let Some(la) = entry.lookahead else { return };
    let ty = &imp.type_name;
    for f in &imp.fns {
        if f.name == "lookahead" {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let end = body.span.end.min(toks.len());
        let mut i = body.span.start;
        while i + 2 < end {
            if toks[i].is_punct(".")
                && (toks[i + 1].is_ident("send") || toks[i + 1].is_ident("send_at"))
                && toks[i + 2].is_punct("(")
            {
                let args = split_args(toks, i + 2);
                if let Some(delay_span) = args.get(1) {
                    let delay =
                        symtab.resolve_expr(&ctx.crate_name, Some(ty), toks, delay_span.clone());
                    if let Some(d) = delay {
                        let line = toks[i + 1].line;
                        if d + 1e-12 < la && !ctx.in_test(line) {
                            out.push(finding(
                                ctx,
                                "lookahead-contract",
                                line,
                                format!(
                                    "`{ty}` declares lookahead {la} but sends with delay {d}; \
                                     `LpCtx::send` asserts delay >= lookahead, so this panics \
                                     on first use — lower the declared lookahead or raise the \
                                     delay"
                                ),
                            ));
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

/// Splits a call's arguments at top-level commas. `open` indexes the `(`.
fn split_args(toks: &[Tok], open: usize) -> Vec<Span> {
    let mut depth = 0usize;
    let mut args: Vec<Span> = Vec::new();
    let mut start = open + 1;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                if j > start {
                    args.push(start..j);
                }
                break;
            }
        } else if depth == 1 && t.is_punct(",") {
            args.push(start..j);
            start = j + 1;
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::{lex, test_line_ranges};
    use crate::symbols::FileInput;

    fn run(src: &str, order_sensitive: bool) -> Vec<Finding> {
        let toks = lex(src);
        let parsed = parse(&toks);
        let mut ctx = FileCtx {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_name: "lsds-x".into(),
            is_test_file: false,
            test_lines: Vec::new(),
            order_sensitive,
            hot_path: false,
        };
        ctx.test_lines = test_line_ranges(&toks);
        let symtab = SymbolTable::build(&[FileInput {
            ctx: &ctx,
            tokens: &toks,
            parsed: &parsed,
        }]);
        let mut out = Vec::new();
        check_sem(&ctx, &toks, &parsed, &symtab, &mut out);
        out
    }

    const TW_LP: &str = "struct Lp { fired: u64, skew: u64 }\n\
        impl SaveState for Lp {\n\
            type Saved = u64;\n\
            fn save(&self) -> u64 { self.fired }\n\
            fn restore(&mut self, s: u64) { self.fired = s; }\n\
        }\n";

    #[test]
    fn unsaved_field_write_in_handle_fires() {
        let src = format!(
            "{TW_LP}impl LogicalProcess for Lp {{\n\
                 type Msg = ();\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {{\n\
                     self.fired += 1;\n\
                     self.skew += 1;\n\
                 }}\n\
             }}\n"
        );
        let f = run(&src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "rollback-safety");
        assert!(f[0].message.contains("skew"), "{}", f[0].message);
    }

    #[test]
    fn saved_field_writes_are_clean() {
        let src = format!(
            "{TW_LP}impl LogicalProcess for Lp {{\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {{\n\
                     self.fired += 1;\n\
                 }}\n\
             }}\n"
        );
        assert!(run(&src, false).is_empty());
    }

    #[test]
    fn clone_save_accepts_any_field_write() {
        let src = "struct Lp { a: u64 }\n\
             impl SaveState for Lp { type Saved = Lp; fn save(&self) -> Lp { self.clone() } }\n\
             impl LogicalProcess for Lp {\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) { self.a += 1; }\n\
             }\n";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn interior_mutability_and_io_fire() {
        let src = format!(
            "{TW_LP}impl LogicalProcess for Lp {{\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {{\n\
                     CACHE.with(|c: &RefCell<u64>| {{ }});\n\
                     println!(\"handled\");\n\
                     self.fired += 1;\n\
                 }}\n\
             }}\n"
        );
        let f = run(&src, false);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("RefCell")));
        assert!(f.iter().any(|x| x.message.contains("println")));
    }

    #[test]
    fn non_savestate_lp_is_not_checked() {
        let src = "struct Lp { a: u64 }\n\
             impl LogicalProcess for Lp {\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {\n\
                     self.a += 1; println!(\"free to do I/O: no rollback here\");\n\
                 }\n\
             }\n";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn mutator_method_on_unsaved_field_fires() {
        let src = format!(
            "{TW_LP}impl LogicalProcess for Lp {{\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {{\n\
                     self.skew.push(now);\n\
                 }}\n\
             }}\n"
        );
        let f = run(&src, false);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn send_below_declared_lookahead_fires() {
        let src = "struct Lp;\n\
             impl LogicalProcess for Lp {\n\
                 fn lookahead(&self) -> f64 { 0.5 }\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {\n\
                     ctx.send(1, 0.1, ());\n\
                 }\n\
             }\n";
        let f = run(src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lookahead-contract");
    }

    #[test]
    fn send_at_or_above_lookahead_is_clean() {
        let src = "const LA: f64 = 0.5;\n\
             struct Lp;\n\
             impl LogicalProcess for Lp {\n\
                 fn lookahead(&self) -> f64 { LA }\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {\n\
                     ctx.send(1, LA, ());\n\
                     ctx.send(1, 0.75, ());\n\
                     ctx.send(1, self.jitter, ());\n\
                 }\n\
             }\n";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn const_delay_below_const_lookahead_fires() {
        let src = "const LA: f64 = 0.5;\n\
             const FAST: f64 = 0.25;\n\
             struct Lp;\n\
             impl LogicalProcess for Lp {\n\
                 fn lookahead(&self) -> f64 { LA }\n\
                 fn handle(&mut self, now: f64, msg: (), ctx: &mut LpCtx) {\n\
                     ctx.send(1, FAST, ());\n\
                 }\n\
             }\n";
        let f = run(src, false);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn lookahead_applies_to_initial_events_impls_too() {
        let src = "struct Lp;\n\
             impl LogicalProcess for Lp {\n\
                 fn lookahead(&self) -> f64 { 1.0 }\n\
             }\n\
             impl InitialEvents for Lp {\n\
                 fn initial(&self, ctx: &mut LpCtx) { ctx.send(1, 0.5, ()); }\n\
             }\n";
        let f = run(src, false);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn taint_runs_only_in_order_sensitive_crates() {
        let src = "fn f(ctx: &mut Ctx, m: HashMap<u64, u64>) {\n\
                let v: Vec<u64> = m.keys().copied().collect();\n\
                ctx.send(1, 0.5, Ev::Ids(v));\n\
             }\n";
        assert_eq!(run(src, true).len(), 1);
        assert!(run(src, false).is_empty());
    }
}
