//! The rule engine: six determinism & hot-path-hygiene rules.
//!
//! Every rule works on the token stream of one file plus a [`FileCtx`]
//! describing where that file sits in the workspace (crate, hot-path
//! membership, test regions). Rules deliberately over-approximate — a
//! token-level analysis cannot resolve types — and the escape hatch is an
//! inline pragma *with a written reason* (see [`crate::scan`]), so every
//! surviving exception is documented at the site.

use crate::lexer::{Tok, TokKind};

/// How a finding is treated by the reporter and the `--deny` gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled for this scope; the finding is dropped.
    Off,
    /// Reported; fails the build only under `--deny`.
    Warn,
    /// Reported; always fails the build.
    Error,
}

impl Severity {
    /// Stable lowercase name (used in reports and config).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Off => "off",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `hash-iter`.
    pub rule: &'static str,
    /// Effective severity after config resolution.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation with the trigger.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` and the report header.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id used in config, pragmas, and reports.
    pub id: &'static str,
    /// Severity when no config overrides it.
    pub default_severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// The rule table. `bad-pragma` and `unused-pragma` are diagnostics of the
/// suppression machinery itself and cannot be suppressed.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-iter",
        default_severity: Severity::Error,
        summary: "HashMap/HashSet iteration in sim-order-sensitive crates \
                  (nondeterministic order can leak into event order)",
    },
    RuleInfo {
        id: "wall-clock",
        default_severity: Severity::Error,
        summary: "wall-clock or OS-entropy source inside simulation code \
                  (SystemTime, Instant::now, RandomState, env-dependent seeds)",
    },
    RuleInfo {
        id: "float-eq",
        default_severity: Severity::Error,
        summary: "float ==/!= comparison on simulated time",
    },
    RuleInfo {
        id: "hot-path-panic",
        default_severity: Severity::Error,
        summary: "unwrap/expect/panic! in an engine hot path outside tests",
    },
    RuleInfo {
        id: "hot-path-vec",
        default_severity: Severity::Error,
        summary: "Vec::remove(0) or partial_cmp-based sort in an engine hot path",
    },
    RuleInfo {
        id: "missing-docs",
        default_severity: Severity::Warn,
        summary: "public top-level item without a doc comment in non-test code",
    },
    RuleInfo {
        id: "determinism-taint",
        default_severity: Severity::Error,
        summary: "nondeterminism source (hash iteration, wall clock, \
                  RandomState, pointer-to-int cast) flows through locals \
                  into a scheduling or event-payload sink",
    },
    RuleInfo {
        id: "rollback-safety",
        default_severity: Severity::Error,
        summary: "Time Warp handler of a SaveState type uses interior \
                  mutability, I/O, or writes a field save() never reads",
    },
    RuleInfo {
        id: "lookahead-contract",
        default_severity: Severity::Error,
        summary: "ctx.send/send_at delay provably below the LP's declared \
                  lookahead (would assert at runtime)",
    },
    RuleInfo {
        id: "bad-pragma",
        default_severity: Severity::Error,
        summary: "malformed lsds-lint pragma (unknown rule, or missing reason)",
    },
    RuleInfo {
        id: "unused-pragma",
        default_severity: Severity::Warn,
        summary: "lsds-lint allow pragma that suppresses nothing",
    },
];

/// True if `id` names a rule in [`RULES`].
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// The rule's default severity ([`Severity::Off`] for unknown ids, which
/// config validation rejects upstream anyway).
pub fn default_severity(id: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.id == id)
        .map_or(Severity::Off, |r| r.default_severity)
}

/// Context the rules need about the file being checked.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Cargo package name owning the file (`lsds` for root-package files).
    pub crate_name: String,
    /// Whole file is test/bench/example code (path-based classification).
    pub is_test_file: bool,
    /// `#[cfg(test)]` / `#[test]` item line ranges inside the file.
    pub test_lines: Vec<(u32, u32)>,
    /// File is inside a sim-order-sensitive crate (config).
    pub order_sensitive: bool,
    /// File is inside an engine hot path (config).
    pub hot_path: bool,
}

impl FileCtx {
    /// True if `line` is inside test code (a test file, or a
    /// `#[cfg(test)]`/`#[test]` item range).
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file || self.test_lines.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Runs every rule over one tokenized file. Severity is attached later by
/// the scanner (config resolution), so findings here carry the default.
pub fn check_file(ctx: &FileCtx, tokens: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    hash_iter(ctx, tokens, &mut out);
    wall_clock(ctx, tokens, &mut out);
    float_eq(ctx, tokens, &mut out);
    hot_path_panic(ctx, tokens, &mut out);
    hot_path_vec(ctx, tokens, &mut out);
    missing_docs(ctx, tokens, &mut out);
    // one finding per (rule, line): `for x in map.iter()` should not report
    // both the loop form and the method form
    out.sort_by(|a, b| (a.line, a.rule, a.file.as_str()).cmp(&(b.line, b.rule, b.file.as_str())));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.file == b.file);
    out
}

pub(crate) fn finding(ctx: &FileCtx, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        severity: default_severity(rule),
        file: ctx.rel_path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------- hash-iter

/// Methods whose results depend on hash-map/set iteration order.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "extract_if",
];

/// Sorting methods that make a collected iteration deterministic again.
pub(crate) const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
];

/// Rule `hash-iter`: iteration over a `HashMap`/`HashSet` in a crate where
/// iteration order can leak into event order.
///
/// Pass A collects identifiers that are hash-typed (field/let type
/// ascriptions and `HashMap::new()`-style initializers); pass B flags
/// order-dependent method calls and `for … in` loops over those names.
/// A **sorted-sink exemption** keeps the codebase's canonical safe pattern
/// quiet: iteration inside a `let` statement whose binding is `.sort*`ed
/// shortly after is deterministic and not reported.
fn hash_iter(ctx: &FileCtx, tokens: &[Tok], out: &mut Vec<Finding>) {
    if !ctx.order_sensitive {
        return;
    }
    let names = hash_typed_names(tokens);
    let is_hash_name = |t: &Tok| t.kind == TokKind::Ident && names.binary_search(&t.text).is_ok();

    for i in 0..tokens.len() {
        // method form: `name . m (`
        if i + 3 < tokens.len()
            && is_hash_name(&tokens[i])
            && tokens[i + 1].is_punct(".")
            && tokens[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&tokens[i + 2].text.as_str())
            && tokens[i + 3].is_punct("(")
        {
            let line = tokens[i + 2].line;
            if ctx.in_test(line) || sorted_sink_exempt(tokens, i) {
                continue;
            }
            out.push(finding(
                ctx,
                "hash-iter",
                line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in a sim-order-sensitive crate; \
                     use a sorted key list, a BTreeMap, or pragma-annotate with a reason",
                    tokens[i].text,
                    tokens[i + 2].text
                ),
            ));
        }
        // loop form: `for pat in [&[mut]] [self .] name {`
        if tokens[i].is_ident("in") && i + 1 < tokens.len() {
            let mut j = i + 1;
            while j < tokens.len()
                && (tokens[j].is_punct("&")
                    || tokens[j].is_ident("mut")
                    || tokens[j].is_ident("self")
                    || tokens[j].is_punct("."))
            {
                j += 1;
            }
            if j + 1 < tokens.len() && is_hash_name(&tokens[j]) && tokens[j + 1].is_punct("{") {
                let line = tokens[j].line;
                if ctx.in_test(line) {
                    continue;
                }
                out.push(finding(
                    ctx,
                    "hash-iter",
                    line,
                    format!(
                        "`for … in {}` iterates a HashMap/HashSet in a sim-order-sensitive \
                         crate; iterate a sorted key list instead",
                        tokens[j].text
                    ),
                ));
            }
        }
    }
}

/// Collects identifiers that are provably hash-typed in this file:
/// `name: HashMap<…>` / `HashSet` ascriptions (fields, params, lets) and
/// `name = HashMap::new()`-style initializers. Sorted + deduped so callers
/// can `binary_search`. Shared by `hash-iter` and the determinism-taint
/// dataflow pass.
pub(crate) fn hash_typed_names(tokens: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    // Pass A: `name : HashMap<…>` / `name : HashSet<…>` ascriptions
    for i in 0..tokens.len() {
        if tokens[i].kind != TokKind::Ident {
            continue;
        }
        if i + 2 < tokens.len() && tokens[i + 1].is_punct(":") {
            let mut j = i + 2;
            // skip `&`, `mut`, and a `std :: collections ::` path prefix
            while j < tokens.len()
                && (tokens[j].is_punct("&")
                    || tokens[j].is_ident("mut")
                    || tokens[j].is_ident("std")
                    || tokens[j].is_ident("collections")
                    || tokens[j].is_punct("::"))
            {
                j += 1;
            }
            if j < tokens.len() && (tokens[j].is_ident("HashMap") || tokens[j].is_ident("HashSet"))
            {
                names.push(tokens[i].text.clone());
            }
        }
    }
    // Pass A': `name = HashMap::new()` / `with_capacity` initializers
    for i in 0..tokens.len() {
        if (tokens[i].is_ident("HashMap") || tokens[i].is_ident("HashSet"))
            && i >= 2
            && tokens[i - 1].is_punct("=")
            && tokens[i - 2].kind == TokKind::Ident
        {
            names.push(tokens[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// True if the iteration at token `i` sits in a `let` statement whose
/// binding is sorted within the next few statements:
/// `let mut ids: Vec<_> = map.keys().collect(); …; ids.sort_unstable();`.
fn sorted_sink_exempt(tokens: &[Tok], i: usize) -> bool {
    // find the `let` opening this statement (bounded backward scan that
    // stops at statement/block boundaries)
    let mut j = i;
    let mut bound: Option<&str> = None;
    let mut back = 0;
    while j > 0 && back < 40 {
        j -= 1;
        back += 1;
        let t = &tokens[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return false;
        }
        if t.is_ident("let") {
            let mut k = j + 1;
            if k < tokens.len() && tokens[k].is_ident("mut") {
                k += 1;
            }
            if k < tokens.len() && tokens[k].kind == TokKind::Ident {
                bound = Some(tokens[k].text.as_str());
            }
            break;
        }
    }
    let Some(bound) = bound else { return false };
    // forward scan: statement end, then `bound . sort*` within reach
    let mut k = i;
    while k < tokens.len() && !tokens[k].is_punct(";") {
        k += 1;
    }
    let horizon = (k + 60).min(tokens.len());
    for m in k..horizon {
        if tokens[m].kind == TokKind::Ident
            && tokens[m].text == bound
            && m + 2 < tokens.len()
            && tokens[m + 1].is_punct(".")
            && SORT_METHODS.contains(&tokens[m + 2].text.as_str())
        {
            return true;
        }
    }
    false
}

// --------------------------------------------------------------- wall-clock

/// Rule `wall-clock`: wall-clock reads and OS-entropy sources. Simulated
/// time must come from the engine clock, and every random draw from a
/// seeded [`SimRng`]-style generator, or runs stop being reproducible.
///
/// [`SimRng`]: https://docs.rs/lsds-stats
fn wall_clock(ctx: &FileCtx, tokens: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if ctx.in_test(line) {
            continue;
        }
        let hit: Option<&str> = if tokens[i].is_ident("SystemTime")
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct("::")
        {
            Some("SystemTime")
        } else if tokens[i].is_ident("Instant")
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct("::")
            && tokens[i + 2].is_ident("now")
        {
            Some("Instant::now")
        } else if tokens[i].is_ident("RandomState") {
            Some("RandomState")
        } else if tokens[i].is_ident("thread_rng") || tokens[i].is_ident("from_entropy") {
            Some("OS-entropy RNG")
        } else if tokens[i].is_ident("env")
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct("::")
            && (tokens[i + 2].is_ident("var") || tokens[i + 2].is_ident("var_os"))
        {
            Some("std::env::var")
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(finding(
                ctx,
                "wall-clock",
                line,
                format!(
                    "{what} is a wall-clock/entropy source; simulation code must draw time \
                     from the engine clock and randomness from a seeded generator"
                ),
            ));
        }
    }
}

// ----------------------------------------------------------------- float-eq

/// Identifiers that mark an operand as "simulated time" for `float-eq`.
const TIME_IDENTS: &[&str] = &[
    "now",
    "time",
    "seconds",
    "due",
    "deadline",
    "eta",
    "clock",
    "timestamp",
    "t_end",
    "t_next",
];

/// Rule `float-eq`: `==`/`!=` where either operand looks like simulated
/// time (float literal, `.seconds()`, or a time-flavored identifier).
/// Exact float equality on computed times is ULP-fragile; compare with
/// [`SimTime`] ordering or an explicit epsilon helper instead.
///
/// [`SimTime`]: https://docs.rs/lsds-core
fn float_eq(ctx: &FileCtx, tokens: &[Tok], out: &mut Vec<Finding>) {
    let timeish = |t: &Tok| -> bool {
        match t.kind {
            // `x == 0.0` is the idiomatic exact zero-guard (zero is exactly
            // representable); any other float literal is suspect
            TokKind::Float => !matches!(
                t.text.trim_end_matches("f64").trim_end_matches("f32"),
                "0.0" | "0." | "0.00"
            ),
            TokKind::Ident => {
                let lower = t.text.to_ascii_lowercase();
                TIME_IDENTS.contains(&lower.as_str())
                    // "lifetime" names borrows, not clocks
                    || (lower.contains("time") && !lower.contains("lifetime"))
            }
            _ => false,
        }
    };
    let continues = |t: &Tok| -> bool {
        matches!(
            t.kind,
            TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Lifetime
        ) || t.is_punct(".")
            || t.is_punct("::")
            || t.is_punct("(")
            || t.is_punct(")")
            || t.is_punct("[")
            || t.is_punct("]")
            || t.is_punct("&")
            || t.is_punct(",")
    };
    for i in 0..tokens.len() {
        if !(tokens[i].is_punct("==") || tokens[i].is_punct("!=")) {
            continue;
        }
        let line = tokens[i].line;
        if ctx.in_test(line) {
            continue;
        }
        let mut hit = false;
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 10 {
            j -= 1;
            steps += 1;
            if !continues(&tokens[j]) {
                break;
            }
            if timeish(&tokens[j]) {
                hit = true;
            }
        }
        let mut j = i + 1;
        let mut steps = 0;
        while j < tokens.len() && steps < 10 {
            if !continues(&tokens[j]) {
                break;
            }
            if timeish(&tokens[j]) {
                hit = true;
            }
            j += 1;
            steps += 1;
        }
        if hit {
            out.push(finding(
                ctx,
                "float-eq",
                line,
                format!(
                    "`{}` on a simulated-time operand: exact float equality is ULP-fragile; \
                     use SimTime ordering or SimTime::approx_eq",
                    tokens[i].text
                ),
            ));
        }
    }
}

// ----------------------------------------------------------- hot-path-panic

/// Rule `hot-path-panic`: `unwrap`/`expect`/`panic!`/`unreachable!`/
/// `todo!`/`unimplemented!` in an engine hot path, outside tests. Hot
/// paths must stay release-panic-free: use `let … else` with a
/// `debug_assert!` for invariants, or a pragma naming why the panic is the
/// designed behavior.
fn hot_path_panic(ctx: &FileCtx, tokens: &[Tok], out: &mut Vec<Finding>) {
    if !ctx.hot_path {
        return;
    }
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if ctx.in_test(line) {
            continue;
        }
        // `. unwrap (` / `. expect (`
        if i + 2 < tokens.len()
            && tokens[i].is_punct(".")
            && (tokens[i + 1].is_ident("unwrap") || tokens[i + 1].is_ident("expect"))
            && tokens[i + 2].is_punct("(")
        {
            out.push(finding(
                ctx,
                "hot-path-panic",
                tokens[i + 1].line,
                format!(
                    "`.{}()` in an engine hot path; use a fallible path \
                     (`let … else` + debug_assert) or pragma-annotate with a reason",
                    tokens[i + 1].text
                ),
            ));
        }
        // `panic ! (` and friends
        if i + 2 < tokens.len()
            && tokens[i].kind == TokKind::Ident
            && matches!(
                tokens[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && tokens[i + 1].is_punct("!")
            && (tokens[i + 2].is_punct("(")
                || tokens[i + 2].is_punct("[")
                || tokens[i + 2].is_punct("{"))
        {
            out.push(finding(
                ctx,
                "hot-path-panic",
                line,
                format!("`{}!` in an engine hot path", tokens[i].text),
            ));
        }
    }
}

// ------------------------------------------------------------- hot-path-vec

/// Rule `hot-path-vec`: `Vec::remove(0)` (an O(n) front pop — use a
/// `VecDeque`) and `sort_by`/`sort_unstable_by` comparators built on
/// `partial_cmp` (not a total order: NaN either panics or derails the
/// sort) in engine hot paths.
fn hot_path_vec(ctx: &FileCtx, tokens: &[Tok], out: &mut Vec<Finding>) {
    if !ctx.hot_path {
        return;
    }
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if ctx.in_test(line) {
            continue;
        }
        if i + 4 < tokens.len()
            && tokens[i].is_punct(".")
            && tokens[i + 1].is_ident("remove")
            && tokens[i + 2].is_punct("(")
            && tokens[i + 3].kind == TokKind::Int
            && tokens[i + 3].text == "0"
            && tokens[i + 4].is_punct(")")
        {
            out.push(finding(
                ctx,
                "hot-path-vec",
                line,
                "`.remove(0)` shifts the whole vector on every front pop; use VecDeque::pop_front"
                    .to_string(),
            ));
        }
        if i + 2 < tokens.len()
            && tokens[i].is_punct(".")
            && (tokens[i + 1].is_ident("sort_by") || tokens[i + 1].is_ident("sort_unstable_by"))
            && tokens[i + 2].is_punct("(")
        {
            // scan the comparator for partial_cmp without total_cmp
            let mut depth = 0usize;
            let mut has_partial = false;
            let mut has_total = false;
            for t in &tokens[i + 2..] {
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("partial_cmp") {
                    has_partial = true;
                } else if t.is_ident("total_cmp") {
                    has_total = true;
                }
            }
            if has_partial && !has_total {
                out.push(finding(
                    ctx,
                    "hot-path-vec",
                    tokens[i + 1].line,
                    format!(
                        "`.{}` comparator uses partial_cmp, which is not a total order \
                         (NaN panics or derails the sort); use f64::total_cmp",
                        tokens[i + 1].text
                    ),
                ));
            }
        }
    }
}

// ------------------------------------------------------------- missing-docs

/// Item keywords that require a doc comment when `pub` at the top level.
const DOC_ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union", "async", "unsafe",
];

/// Rule `missing-docs`: a `pub` item at file top level (brace depth 0)
/// without a doc comment. Restricted visibility (`pub(crate)`) and
/// re-exports (`pub use`) are exempt; nested items are left to rustc's
/// `missing_docs` lint, which every clean crate enables via
/// `#![deny(missing_docs)]`.
fn missing_docs(ctx: &FileCtx, tokens: &[Tok], out: &mut Vec<Finding>) {
    if ctx.is_test_file {
        return;
    }
    let mut depth = 0i32;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            continue;
        }
        if t.is_punct("}") {
            depth -= 1;
            continue;
        }
        if depth != 0 || !t.is_ident("pub") || ctx.in_test(t.line) {
            continue;
        }
        // visibility-restricted? `pub ( crate )` — not public API
        if i + 1 < tokens.len() && tokens[i + 1].is_punct("(") {
            continue;
        }
        // what item is this?
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        if !(next.kind == TokKind::Ident && DOC_ITEMS.contains(&next.text.as_str())) {
            continue; // `pub use`, macro output, …
        }
        // `pub mod name;` — the doc lives in the module file as `//!`,
        // which is where rustc's missing_docs looks too
        if next.is_ident("mod") && tokens.get(i + 3).is_some_and(|t| t.is_punct(";")) {
            continue;
        }
        // walk back over attributes to the nearest doc comment
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let p = &tokens[j];
            if p.kind == TokKind::DocComment {
                documented = true;
                break;
            }
            if p.is_punct("]") {
                // skip the attribute `# [ … ]` backwards
                let mut d = 1i32;
                while j > 0 && d > 0 {
                    j -= 1;
                    if tokens[j].is_punct("]") {
                        d += 1;
                    } else if tokens[j].is_punct("[") {
                        d -= 1;
                    }
                }
                if j > 0 && tokens[j - 1].is_punct("#") {
                    j -= 1;
                    continue;
                }
            }
            break;
        }
        if !documented {
            let name = tokens
                .get(i + 2)
                .filter(|t| t.kind == TokKind::Ident)
                .map_or("<unnamed>", |t| t.text.as_str());
            out.push(finding(
                ctx,
                "missing-docs",
                t.line,
                format!("public `{} {}` has no doc comment", next.text, name),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_line_ranges};

    fn ctx(order: bool, hot: bool, tokens: &[Tok]) -> FileCtx {
        FileCtx {
            rel_path: "crates/x/src/lib.rs".to_string(),
            crate_name: "x".to_string(),
            is_test_file: false,
            test_lines: test_line_ranges(tokens),
            order_sensitive: order,
            hot_path: hot,
        }
    }

    fn run(src: &str, order: bool, hot: bool) -> Vec<Finding> {
        let toks = lex(src);
        let c = ctx(order, hot, &toks);
        check_file(&c, &toks)
    }

    #[test]
    fn hash_iter_flags_values_and_for_loops() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn f(&self) -> f64 { self.m.values().sum() } }\n\
                   fn g(m: &HashMap<u64, u64>) { for v in m { let _ = v; } }\n";
        let f = run(src, true, false);
        assert_eq!(f.iter().filter(|x| x.rule == "hash-iter").count(), 2);
        assert!(run(src, false, false).iter().all(|x| x.rule != "hash-iter"));
    }

    #[test]
    fn hash_iter_sorted_sink_is_exempt() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn f(&self) {\n\
                     let mut ids: Vec<u64> = self.m.keys().copied().collect();\n\
                     ids.sort_unstable();\n\
                   } }\n";
        assert!(run(src, true, false).iter().all(|x| x.rule != "hash-iter"));
    }

    #[test]
    fn wall_clock_flags_instant_now() {
        let f = run("fn f() { let t = Instant::now(); }", false, false);
        assert_eq!(f.iter().filter(|x| x.rule == "wall-clock").count(), 1);
    }

    #[test]
    fn float_eq_flags_time_comparison() {
        let f = run(
            "fn f(now: f64, due: f64) -> bool { now == due }",
            false,
            false,
        );
        assert_eq!(f.iter().filter(|x| x.rule == "float-eq").count(), 1);
        let clean = run("fn f(gen: u64, g: u64) -> bool { gen == g }", false, false);
        assert!(clean.iter().all(|x| x.rule != "float-eq"));
    }

    #[test]
    fn hot_path_panic_only_in_hot_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(run(src, false, true).len(), 1);
        assert!(run(src, false, false).is_empty());
        // tests inside hot files stay exempt
        let test_src = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(run(test_src, false, true).is_empty());
    }

    #[test]
    fn hot_path_vec_flags_remove0_and_partial_cmp_sort() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.remove(0);\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        let f = run(src, false, true);
        assert_eq!(f.iter().filter(|x| x.rule == "hot-path-vec").count(), 2);
        let clean = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(run(clean, false, true).is_empty());
    }

    #[test]
    fn missing_docs_flags_undocumented_pub() {
        let src =
            "/// documented\npub fn a() {}\npub fn b() {}\npub(crate) fn c() {}\npub use x::y;\n";
        let f = run(src, false, false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "missing-docs");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn attributes_between_doc_and_item_are_ok() {
        let src = "/// documented\n#[derive(Debug)]\npub struct S;\n";
        assert!(run(src, false, false).is_empty());
    }
}
