//! Incremental scanning: `--changed <git-ref>` target selection and the
//! `--cache` content-hash finding cache.
//!
//! Both features restrict *which files get the rule passes*, never what
//! the passes can see: the symbol table is always built from the whole
//! workspace, so a one-file incremental run reports exactly the findings
//! a full run would report for that file (cross-file facts — another
//! file's `SaveState` impl, a const feeding a lookahead — stay visible).
//!
//! The cache is a JSON document keyed twice: a **global key** hashing the
//! config text, the rule table, and the symbol-table fingerprint (any of
//! those changing invalidates everything), and a per-file **content
//! hash**. A hit replays the stored findings without running the passes.

use crate::report::SCHEMA_VERSION;
use crate::rules::{Finding, Severity, RULES};
use crate::symbols::fnv64;
use lsds_trace::Json;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

/// Workspace-relative `.rs` paths changed against `git_ref`, per
/// `git diff --name-only`. Untracked files are not listed by `git diff`,
/// so freshly added files fall back to a full-path scan by the caller.
pub fn changed_files(root: &Path, git_ref: &str) -> Result<Vec<String>, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", git_ref, "--"])
        .output()
        .map_err(|e| format!("cannot run git: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {git_ref} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    let mut files: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().replace('\\', "/"))
        .filter(|l| l.ends_with(".rs"))
        .collect();
    files.sort();
    files.dedup();
    Ok(files)
}

/// The global cache key: config text + rule table + symbol-table
/// fingerprint, FNV-hashed.
pub fn cache_key(config_text: &str, symtab_fingerprint: u64) -> u64 {
    let mut dump = String::new();
    dump.push_str(config_text);
    for r in RULES {
        dump.push_str(r.id);
        dump.push(':');
        dump.push_str(r.default_severity.name());
        dump.push(';');
    }
    dump.push_str(&format!("symtab={symtab_fingerprint:016x}"));
    fnv64(dump.as_bytes())
}

/// The on-disk finding cache.
#[derive(Debug, Default)]
pub struct Cache {
    /// Global key the stored entries were computed under.
    key: u64,
    /// rel path → (content hash, findings).
    files: BTreeMap<String, (u64, Vec<Finding>)>,
    /// Entries were loaded under a different key and dropped.
    invalidated: bool,
}

impl Cache {
    /// A fresh cache for `key`.
    pub fn new(key: u64) -> Cache {
        Cache {
            key,
            files: BTreeMap::new(),
            invalidated: false,
        }
    }

    /// Loads the cache at `path`, dropping all entries when the stored
    /// global key differs from `key` (config/rules/symbols changed).
    /// Unreadable or malformed caches start empty — never an error.
    pub fn load(path: &Path, key: u64) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::new(key);
        };
        let Ok(doc) = Json::parse(&text) else {
            return Cache::new(key);
        };
        let stored_key = doc
            .get("key")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok());
        if doc.get("schema_version").and_then(Json::as_f64) != Some(SCHEMA_VERSION)
            || stored_key != Some(key)
        {
            let mut c = Cache::new(key);
            c.invalidated = stored_key.is_some();
            return c;
        }
        let mut cache = Cache::new(key);
        if let Some(Json::Obj(entries)) = doc.get("files") {
            for (rel, entry) in entries {
                let Some(hash) = entry
                    .get("hash")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                else {
                    continue;
                };
                let Some(Json::Arr(items)) = entry.get("findings") else {
                    continue;
                };
                let findings: Option<Vec<Finding>> = items.iter().map(finding_from_json).collect();
                if let Some(fs) = findings {
                    cache.files.insert(rel.clone(), (hash, fs));
                }
            }
        }
        cache
    }

    /// True when a previous cache existed but its key no longer matches.
    pub fn was_invalidated(&self) -> bool {
        self.invalidated
    }

    /// Cached findings for `rel` if the content hash matches.
    pub fn lookup(&self, rel: &str, hash: u64) -> Option<&[Finding]> {
        self.files
            .get(rel)
            .filter(|(h, _)| *h == hash)
            .map(|(_, f)| f.as_slice())
    }

    /// Records a scan result.
    pub fn insert(&mut self, rel: &str, hash: u64, findings: Vec<Finding>) {
        self.files.insert(rel.to_string(), (hash, findings));
    }

    /// Writes the cache to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let entries: Vec<(String, Json)> = self
            .files
            .iter()
            .map(|(rel, (hash, findings))| {
                (
                    rel.clone(),
                    Json::Obj(vec![
                        ("hash".to_string(), Json::Str(format!("{hash:016x}"))),
                        (
                            "findings".to_string(),
                            Json::Arr(findings.iter().map(finding_to_json).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        let doc = Json::Obj(vec![
            ("tool".to_string(), Json::Str("lsds-lint-cache".to_string())),
            ("schema_version".to_string(), Json::Num(SCHEMA_VERSION)),
            ("key".to_string(), Json::Str(format!("{:016x}", self.key))),
            ("files".to_string(), Json::Obj(entries)),
        ]);
        std::fs::write(path, doc.render_pretty())
    }
}

fn finding_to_json(f: &Finding) -> Json {
    Json::Obj(vec![
        ("rule".to_string(), Json::Str(f.rule.to_string())),
        (
            "severity".to_string(),
            Json::Str(f.severity.name().to_string()),
        ),
        ("file".to_string(), Json::Str(f.file.clone())),
        ("line".to_string(), Json::Num(f.line as f64)),
        ("message".to_string(), Json::Str(f.message.clone())),
    ])
}

fn finding_from_json(item: &Json) -> Option<Finding> {
    let rule_name = item.get("rule").and_then(Json::as_str)?;
    let rule = RULES.iter().find(|r| r.id == rule_name)?.id;
    let severity = match item.get("severity").and_then(Json::as_str)? {
        "off" => Severity::Off,
        "warn" => Severity::Warn,
        "error" => Severity::Error,
        _ => return None,
    };
    Some(Finding {
        rule,
        severity,
        file: item.get("file").and_then(Json::as_str)?.to_string(),
        line: item.get("line").and_then(Json::as_f64)? as u32,
        message: item.get("message").and_then(Json::as_str)?.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "determinism-taint",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "taint reaches sink".to_string(),
        }]
    }

    #[test]
    fn cache_round_trips_and_honors_content_hash() {
        let dir = std::env::temp_dir().join("lsds-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let key = cache_key("{}", 42);
        let mut c = Cache::new(key);
        c.insert("crates/x/src/lib.rs", 0xabc, sample());
        c.save(&path).unwrap();

        let back = Cache::load(&path, key);
        assert_eq!(
            back.lookup("crates/x/src/lib.rs", 0xabc),
            Some(sample().as_slice())
        );
        // content changed → miss
        assert!(back.lookup("crates/x/src/lib.rs", 0xdef).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_change_invalidates_everything() {
        let dir = std::env::temp_dir().join("lsds-lint-cache-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let mut c = Cache::new(cache_key("{}", 1));
        c.insert("a.rs", 1, sample());
        c.save(&path).unwrap();

        let other = Cache::load(&path, cache_key("{}", 2));
        assert!(other.lookup("a.rs", 1).is_none());
        assert!(other.was_invalidated());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_cache_starts_empty() {
        let dir = std::env::temp_dir().join("lsds-lint-cache-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, "not json at all").unwrap();
        let c = Cache::load(&path, 7);
        assert!(c.lookup("a.rs", 1).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_key_varies_with_inputs() {
        assert_ne!(cache_key("{}", 1), cache_key("{}", 2));
        assert_ne!(cache_key("{}", 1), cache_key("{\"x\":1}", 1));
    }
}
