//! CLI for `lsds-lint`.
//!
//! ```text
//! cargo run --release -p lsds-lint -- [--deny] [--json PATH] [--root DIR]
//!                                     [--config PATH] [--list-rules] [FILES…]
//! ```
//!
//! Without `--deny` the tool reports and exits 0 (survey mode); with
//! `--deny` any surviving finding — warn or error — exits nonzero, which
//! is the CI gate. `--json` writes the machine-readable report (the CI
//! job prints it on failure). Positional `FILES` restrict the scan to
//! specific workspace-relative paths (used by the fixture tests).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use lsds_lint::{config::Config, report, rules, scan};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny: bool,
    list_rules: bool,
    json: Option<PathBuf>,
    root: PathBuf,
    config: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        list_rules: false,
        json: None,
        root: PathBuf::from("."),
        config: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json requires a path")?)),
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root requires a path")?),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a path")?))
            }
            "--help" | "-h" => {
                println!(
                    "lsds-lint [--deny] [--json PATH] [--root DIR] [--config PATH] \
                     [--list-rules] [FILES…]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => args.files.push(file.to_string()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lsds-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in rules::RULES {
            println!(
                "{:<16} {:<6} {}",
                r.id,
                r.default_severity.name(),
                r.summary
            );
        }
        return ExitCode::SUCCESS;
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lsds-lint.json"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lsds-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match scan::scan_workspace(&args.root, &cfg, &args.files) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lsds-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!(
            "{}:{}: [{}] {}: {}",
            f.file,
            f.line,
            f.severity.name(),
            f.rule,
            f.message
        );
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == lsds_lint::Severity::Error)
        .count();
    let warns = findings.len() - errors;
    println!(
        "lsds-lint: {} finding(s) ({errors} error(s), {warns} warning(s))",
        findings.len()
    );

    if let Some(path) = &args.json {
        let doc = report::to_json(&findings);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            eprintln!("lsds-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if errors > 0 || (args.deny && !findings.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
