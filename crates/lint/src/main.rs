//! CLI for `lsds-lint`.
//!
//! ```text
//! cargo run --release -p lsds-lint -- [--deny] [--json PATH] [--root DIR]
//!                                     [--config PATH] [--changed GIT_REF]
//!                                     [--cache PATH] [--list-rules] [FILES…]
//! ```
//!
//! Without `--deny` the tool reports and exits 0 (survey mode); with
//! `--deny` any surviving finding — warn or error — exits nonzero, which
//! is the CI gate. `--json` writes the machine-readable report (the CI
//! job prints it on failure). Positional `FILES` restrict the scan to
//! specific workspace-relative paths (used by the fixture tests).
//!
//! Incremental mode: `--changed <git-ref>` restricts the rule passes to
//! files `git diff --name-only <ref>` reports (PR builds lint their diff
//! in seconds), and `--cache <path>` keeps a content-hash finding cache
//! across runs. Both modes still build the symbol table from the whole
//! workspace, so restricted runs report exactly what a full run would for
//! the scanned files.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use lsds_lint::{config::Config, incremental, report, rules, scan};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny: bool,
    list_rules: bool,
    json: Option<PathBuf>,
    root: PathBuf,
    config: Option<PathBuf>,
    changed: Option<String>,
    cache: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        list_rules: false,
        json: None,
        root: PathBuf::from("."),
        config: None,
        changed: None,
        cache: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json requires a path")?)),
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root requires a path")?),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a path")?))
            }
            "--changed" => args.changed = Some(it.next().ok_or("--changed requires a git ref")?),
            "--cache" => {
                args.cache = Some(PathBuf::from(it.next().ok_or("--cache requires a path")?))
            }
            "--help" | "-h" => {
                println!(
                    "lsds-lint [--deny] [--json PATH] [--root DIR] [--config PATH] \
                     [--changed GIT_REF] [--cache PATH] [--list-rules] [FILES…]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => args.files.push(file.to_string()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lsds-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in rules::RULES {
            println!(
                "{:<20} {:<6} {}",
                r.id,
                r.default_severity.name(),
                r.summary
            );
        }
        return ExitCode::SUCCESS;
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lsds-lint.json"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lsds-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // one whole-workspace prepare: every file lexed + parsed, symbol table
    // built from all of them (incremental modes restrict the rule passes,
    // never the symbols)
    let ws = match scan::prepare_workspace(&args.root, &cfg, &args.files) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("lsds-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    // target selection: --changed beats positional FILES beats everything
    let targets: Option<Vec<String>> = if let Some(git_ref) = &args.changed {
        match incremental::changed_files(&args.root, git_ref) {
            Ok(changed) => {
                // only files the walker knows (excludes non-workspace paths)
                let known: Vec<String> = changed
                    .into_iter()
                    .filter(|rel| ws.files.iter().any(|f| &f.rel == rel))
                    .collect();
                Some(known)
            }
            Err(e) => {
                eprintln!("lsds-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if !args.files.is_empty() {
        Some(args.files.clone())
    } else {
        None
    };

    let mut cache = args.cache.as_ref().map(|path| {
        let config_text = std::fs::read_to_string(&config_path).unwrap_or_default();
        let key = incremental::cache_key(&config_text, ws.symtab.fingerprint());
        incremental::Cache::load(path, key)
    });

    let mut findings = Vec::new();
    let mut cache_hits = 0usize;
    for pf in &ws.files {
        if targets
            .as_ref()
            .is_some_and(|t| !t.iter().any(|x| x == &pf.rel))
        {
            continue;
        }
        let hash = pf.content_hash();
        if let Some(cached) = cache.as_ref().and_then(|c| c.lookup(&pf.rel, hash)) {
            cache_hits += 1;
            findings.extend(cached.iter().cloned());
            continue;
        }
        let fs = ws.scan_one(&cfg, &pf.rel).unwrap_or_default();
        if let Some(c) = cache.as_mut() {
            c.insert(&pf.rel, hash, fs.clone());
        }
        findings.extend(fs);
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    if let (Some(c), Some(path)) = (&cache, &args.cache) {
        if let Err(e) = c.save(path) {
            eprintln!("lsds-lint: cannot write cache {}: {e}", path.display());
        }
    }

    for f in &findings {
        println!(
            "{}:{}: [{}] {}: {}",
            f.file,
            f.line,
            f.severity.name(),
            f.rule,
            f.message
        );
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == lsds_lint::Severity::Error)
        .count();
    let warns = findings.len() - errors;
    let scanned = targets.as_ref().map_or(ws.files.len(), Vec::len);
    println!(
        "lsds-lint: {} finding(s) ({errors} error(s), {warns} warning(s)) \
         across {scanned} file(s){}",
        findings.len(),
        if cache.is_some() {
            format!(", {cache_hits} from cache")
        } else {
            String::new()
        }
    );

    if let Some(path) = &args.json {
        let doc = report::to_json(&findings);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            eprintln!("lsds-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if errors > 0 || (args.deny && !findings.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
