//! Golden fixture tests: one positive and one negative fixture per rule,
//! pragma-suppression behavior, the JSON report round-trip through
//! `lsds-trace`, and end-to-end `--deny` exit codes against the built
//! binary.
//!
//! The fixture tree under `tests/fixtures/` mimics a workspace layout
//! (`crates/sim/src/*.rs` plus its own `lsds-lint.json`) but is never
//! compiled; it exists only to be scanned.

use lsds_lint::config::Config;
use lsds_lint::{report, scan, Finding, Severity};
use lsds_trace::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_cfg() -> Config {
    Config::load(&fixture_root().join("lsds-lint.json")).expect("fixture config parses")
}

/// Scans one fixture file through the library API and returns its findings.
fn scan_fixture(name: &str) -> Vec<Finding> {
    let root = fixture_root();
    let cfg = fixture_cfg();
    let rel = format!("crates/sim/src/{name}.rs");
    let source = std::fs::read_to_string(root.join(&rel)).expect("fixture file readable");
    let ctx = scan::file_ctx(&root, &cfg, &rel);
    scan::scan_source(&cfg, &ctx, &source)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn fixture_crate_resolves_to_lsds_sim() {
    let root = fixture_root();
    let cfg = fixture_cfg();
    let hot = scan::file_ctx(&root, &cfg, "crates/sim/src/hot_panic_pos.rs");
    assert_eq!(hot.crate_name, "lsds-sim");
    assert!(hot.order_sensitive);
    assert!(hot.hot_path);
    let cold = scan::file_ctx(&root, &cfg, "crates/sim/src/hash_iter_pos.rs");
    assert!(cold.order_sensitive);
    assert!(!cold.hot_path);
}

#[test]
fn hash_iter_golden() {
    assert_eq!(rules_of(&scan_fixture("hash_iter_pos")), ["hash-iter"]);
    assert!(
        scan_fixture("hash_iter_neg").is_empty(),
        "sorted sink must be exempt"
    );
}

#[test]
fn wall_clock_golden() {
    assert_eq!(rules_of(&scan_fixture("wall_clock_pos")), ["wall-clock"]);
    assert!(scan_fixture("wall_clock_neg").is_empty());
}

#[test]
fn float_eq_golden() {
    assert_eq!(rules_of(&scan_fixture("float_eq_pos")), ["float-eq"]);
    assert!(
        scan_fixture("float_eq_neg").is_empty(),
        "zero-guards and integer equality must not trip float-eq"
    );
}

#[test]
fn hot_path_panic_golden() {
    assert_eq!(rules_of(&scan_fixture("hot_panic_pos")), ["hot-path-panic"]);
    assert!(
        scan_fixture("hot_panic_neg").is_empty(),
        "let-else with debug_assert is the sanctioned pattern"
    );
}

#[test]
fn hot_path_vec_golden() {
    // `remove(0)` and the partial_cmp comparator are two separate findings.
    assert_eq!(
        rules_of(&scan_fixture("hot_vec_pos")),
        ["hot-path-vec", "hot-path-vec"]
    );
    assert!(scan_fixture("hot_vec_neg").is_empty());
}

#[test]
fn missing_docs_golden() {
    let pos = scan_fixture("missing_docs_pos");
    assert_eq!(rules_of(&pos), ["missing-docs"]);
    assert_eq!(
        pos[0].severity,
        Severity::Warn,
        "missing-docs defaults to warn"
    );
    assert!(scan_fixture("missing_docs_neg").is_empty());
}

#[test]
fn determinism_taint_golden() {
    // ptr-cast laundered through two locals into a scheduling sink
    assert_eq!(
        rules_of(&scan_fixture("det_taint_pos")),
        ["determinism-taint"]
    );
    // the motivating case: hash iteration collected into a Vec — the token
    // rule flags the source, the dataflow pass flags the sink it reaches
    assert_eq!(
        rules_of(&scan_fixture("det_taint_launder")),
        ["hash-iter", "determinism-taint"]
    );
    assert!(
        scan_fixture("det_taint_neg").is_empty(),
        "sorted laundering and order-free accessors must stay clean"
    );
}

#[test]
fn rollback_safety_golden() {
    let pos = scan_fixture("rollback_pos");
    assert_eq!(rules_of(&pos), ["rollback-safety"]);
    assert!(
        pos[0].message.contains("skew"),
        "must name the unsaved field: {}",
        pos[0].message
    );
    assert!(
        scan_fixture("rollback_neg").is_empty(),
        "handle writing only saved fields must stay clean"
    );
}

#[test]
fn lookahead_contract_golden() {
    assert_eq!(
        rules_of(&scan_fixture("lookahead_pos")),
        ["lookahead-contract"]
    );
    assert!(
        scan_fixture("lookahead_neg").is_empty(),
        "delays >= lookahead and runtime-computed delays must stay clean"
    );
}

#[test]
fn justified_pragma_suppresses() {
    assert!(scan_fixture("pragma_ok").is_empty());
}

#[test]
fn justified_pragma_suppresses_semantic_rules() {
    assert!(scan_fixture("pragma_sem_ok").is_empty());
}

#[test]
fn pragma_without_reason_is_error_and_suppresses_nothing() {
    let findings = scan_fixture("pragma_bad");
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    assert_eq!(rules, ["bad-pragma", "float-eq"]);
    assert!(findings.iter().any(|f| f.severity == Severity::Error));
}

#[test]
fn stale_pragma_is_reported() {
    assert_eq!(rules_of(&scan_fixture("pragma_unused")), ["unused-pragma"]);
}

#[test]
fn report_round_trips_through_lsds_trace() {
    let root = fixture_root();
    let cfg = fixture_cfg();
    let findings = scan::scan_workspace(&root, &cfg, &[]).expect("fixture scan");
    assert!(!findings.is_empty(), "fixture tree must produce findings");
    let doc = report::to_json(&findings);
    let text = doc.render_pretty();
    let parsed = Json::parse(&text).expect("rendered report parses back");
    let restored = report::from_json(&parsed).expect("schema accepted");
    assert_eq!(restored, findings);
    // the new semantic finding kinds must survive the round-trip too
    for kind in ["determinism-taint", "rollback-safety", "lookahead-contract"] {
        assert!(
            restored.iter().any(|f| f.rule == kind),
            "fixture tree must exercise {kind} in the report"
        );
    }
}

/// Runs the built `lsds-lint` binary against one fixture file under `--deny`.
fn deny_exit(file: &str) -> bool {
    let root = fixture_root();
    let status = Command::new(env!("CARGO_BIN_EXE_lsds-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--config")
        .arg(root.join("lsds-lint.json"))
        .arg("--deny")
        .arg(format!("crates/sim/src/{file}.rs"))
        .status()
        .expect("lsds-lint binary runs");
    status.success()
}

#[test]
fn deny_gate_fails_each_positive_fixture() {
    for file in [
        "hash_iter_pos",
        "wall_clock_pos",
        "float_eq_pos",
        "hot_panic_pos",
        "hot_vec_pos",
        "missing_docs_pos",
        "pragma_bad",
        "pragma_unused",
        "det_taint_pos",
        "det_taint_launder",
        "rollback_pos",
        "lookahead_pos",
    ] {
        assert!(!deny_exit(file), "{file} must fail under --deny");
    }
}

#[test]
fn deny_gate_passes_each_negative_fixture() {
    for file in [
        "hash_iter_neg",
        "wall_clock_neg",
        "float_eq_neg",
        "hot_panic_neg",
        "hot_vec_neg",
        "missing_docs_neg",
        "pragma_ok",
        "det_taint_neg",
        "rollback_neg",
        "lookahead_neg",
        "pragma_sem_ok",
    ] {
        assert!(deny_exit(file), "{file} must pass under --deny");
    }
}

#[test]
fn json_artifact_is_written_and_parseable() {
    let root = fixture_root();
    let out = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-report.json");
    let status = Command::new(env!("CARGO_BIN_EXE_lsds-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--config")
        .arg(root.join("lsds-lint.json"))
        .arg("--json")
        .arg(&out)
        .arg("crates/sim/src/float_eq_pos.rs")
        .status()
        .expect("lsds-lint binary runs");
    // float-eq is an error-severity finding, so even survey mode fails.
    assert!(!status.success());
    let text = std::fs::read_to_string(&out).expect("report written");
    let doc = Json::parse(&text).expect("report parses");
    let restored = report::from_json(&doc).expect("schema accepted");
    assert_eq!(restored.len(), 1);
    assert_eq!(restored[0].rule, "float-eq");
}
