//! Positive fixture (the seeded acceptance case): a Time Warp LP whose
//! `handle` writes a field `save()` never reads. Rollback restores
//! `fired` but leaves `skew` at its post-rollback value — silent state
//! corruption on re-execution.

struct Meter {
    fired: u64,
    skew: u64,
}

impl SaveState for Meter {
    type Saved = u64;
    fn save(&self) -> u64 {
        self.fired
    }
    fn restore(&mut self, s: u64) {
        self.fired = s;
    }
}

impl LogicalProcess for Meter {
    type Msg = ();
    fn handle(&mut self, _now: f64, _msg: (), _ctx: &mut LpCtx<()>) {
        self.fired += 1;
        self.skew += 1;
    }
}
