//! Fixture: a justified pragma silences a semantic-rule finding, same as
//! it does for token rules.

fn schedule_by_address(ctx: &mut Ctx, job: &Job) {
    let key = job as *const Job as usize;
    // lsds-lint: allow(determinism-taint) reason="key feeds a debug-only overlay event that never touches sim state"
    ctx.schedule_in(0.5, Ev::Overlay(key));
}
