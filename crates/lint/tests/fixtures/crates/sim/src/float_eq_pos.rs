//! Positive fixture: exact float equality on simulated time.

fn fired(now: f64, deadline: f64) -> bool {
    now == deadline
}
