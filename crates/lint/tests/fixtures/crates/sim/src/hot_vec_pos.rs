//! Positive fixture: O(n) front pop and a partial_cmp comparator.

fn shift(events: &mut Vec<u64>) -> u64 {
    events.remove(0)
}

fn order(rates: &mut Vec<f64>) {
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
