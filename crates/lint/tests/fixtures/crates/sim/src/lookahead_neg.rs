//! Negative fixture: delays at or above the declared lookahead, plus a
//! runtime-computed delay the lint cannot (and must not) judge.

const SAFE_LA: f64 = 0.5;

struct SafeRouter {
    jitter: f64,
}

impl LogicalProcess for SafeRouter {
    type Msg = u64;
    fn lookahead(&self) -> f64 {
        SAFE_LA
    }
    fn handle(&mut self, _now: f64, msg: u64, ctx: &mut LpCtx<u64>) {
        ctx.send(msg, SAFE_LA, msg);
        ctx.send(msg, 0.75, msg);
        ctx.send(msg, SAFE_LA + self.jitter, msg);
    }
}
