//! Negative fixture: every field `handle` writes is captured by `save()`,
//! so rollback fully restores the LP.

struct Gauge {
    fired: u64,
    skew: u64,
}

impl SaveState for Gauge {
    type Saved = (u64, u64);
    fn save(&self) -> (u64, u64) {
        (self.fired, self.skew)
    }
    fn restore(&mut self, s: (u64, u64)) {
        self.fired = s.0;
        self.skew = s.1;
    }
}

impl LogicalProcess for Gauge {
    type Msg = ();
    fn handle(&mut self, _now: f64, _msg: (), _ctx: &mut LpCtx<()>) {
        self.fired += 1;
        self.skew += 1;
    }
}
