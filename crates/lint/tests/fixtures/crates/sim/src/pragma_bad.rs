//! Fixture: a pragma without a reason is itself an error and suppresses
//! nothing.

fn fired(now: f64, deadline: f64) -> bool {
    // lsds-lint: allow(float-eq)
    now == deadline
}
