//! Positive fixture: hash iteration order leaks into accumulation order.

use std::collections::HashMap;

fn unsorted_sum() -> f64 {
    let m: HashMap<u64, f64> = HashMap::new();
    let mut total = 0.0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}
