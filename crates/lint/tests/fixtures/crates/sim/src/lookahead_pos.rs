//! Positive fixture: the LP declares its lookahead through a const, then
//! sends with a smaller literal delay. `LpCtx::send` asserts
//! `delay >= lookahead`, so this panics on first use — the lint catches
//! it at review time by resolving both constants.

const LINK_LA: f64 = 0.5;

struct Router;

impl LogicalProcess for Router {
    type Msg = u64;
    fn lookahead(&self) -> f64 {
        LINK_LA
    }
    fn handle(&mut self, _now: f64, msg: u64, ctx: &mut LpCtx<u64>) {
        ctx.send(msg, 0.1, msg);
    }
}
