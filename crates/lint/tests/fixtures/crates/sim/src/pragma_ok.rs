//! Fixture: a justified pragma silences the finding it covers.

use std::time::Instant;

fn wall_elapsed() -> std::time::Duration {
    // lsds-lint: allow(wall-clock) reason="measures host runtime for the bench harness, not simulated time"
    let start = Instant::now();
    start.elapsed()
}
