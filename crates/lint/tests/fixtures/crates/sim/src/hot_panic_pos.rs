//! Positive fixture: panicking pop on the event hot path.

fn pop_due(queue: &mut Vec<u64>) -> u64 {
    queue.pop().expect("queue empty")
}
