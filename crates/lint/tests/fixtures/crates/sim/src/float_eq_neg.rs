//! Negative fixture: exact zero-guards and integer equality are fine.

fn any_load(den: f64) -> bool {
    den == 0.0
}

fn same_generation(a: u64, b: u64) -> bool {
    a == b
}
