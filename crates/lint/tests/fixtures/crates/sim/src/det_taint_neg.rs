//! Negative fixture: the same laundering shape, made deterministic by
//! sorting before the scheduling sink — the sanctioned pattern.

use std::collections::HashMap;

fn broadcast_sorted(ctx: &mut Ctx, peers: &HashMap<u64, Peer>) {
    let mut ids: Vec<u64> = peers.keys().copied().collect();
    ids.sort_unstable();
    for p in ids {
        ctx.send(p, 1.0, Ev::Ping);
    }
}

fn count_only(ctx: &mut Ctx, peers: &HashMap<u64, Peer>) {
    // order-free accessors of a hash map are deterministic
    ctx.schedule_in(0.5, Ev::Census(peers.len()));
}
