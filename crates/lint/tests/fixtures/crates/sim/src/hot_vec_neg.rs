//! Negative fixture: VecDeque front pop and a total-order comparator.

use std::collections::VecDeque;

fn shift(events: &mut VecDeque<u64>) -> Option<u64> {
    events.pop_front()
}

fn order(rates: &mut Vec<f64>) {
    rates.sort_by(|a, b| a.total_cmp(b));
}
