//! Positive fixture: hash iteration laundered through a `Vec` before
//! reaching the scheduler — the motivating case for the dataflow pass.
//! The token rule flags the iteration itself; the taint rule flags the
//! sink it reaches three statements later.

use std::collections::HashMap;

fn broadcast(ctx: &mut Ctx, peers: &HashMap<u64, Peer>) {
    let ids: Vec<u64> = peers.keys().copied().collect();
    let order = ids;
    for p in order {
        ctx.send(p, 1.0, Ev::Ping);
    }
}
