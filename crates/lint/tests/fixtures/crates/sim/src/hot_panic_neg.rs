//! Negative fixture: fallible pop with a debug-loud fallback.

fn pop_due(queue: &mut Vec<u64>) -> u64 {
    let Some(head) = queue.pop() else {
        debug_assert!(false, "pop on empty queue");
        return 0;
    };
    head
}
