//! Positive fixture: wall-clock read inside simulation code.

use std::time::Instant;

fn elapsed_wall() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
