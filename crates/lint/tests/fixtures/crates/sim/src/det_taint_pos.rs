//! Positive fixture: a pointer-to-integer cast flows through a local into
//! a scheduling sink. No token-level rule sees this — only the dataflow
//! pass does.

fn schedule_by_address(ctx: &mut Ctx, job: &Job) {
    let key = job as *const Job as usize;
    let routed = key % 16;
    ctx.schedule_in(0.5, Ev::Dispatch(routed));
}
