//! Negative fixture: collect-then-sort makes hash iteration deterministic
//! (the sorted-sink exemption).

use std::collections::HashMap;

fn sorted_sum() -> f64 {
    let m: HashMap<u64, f64> = HashMap::new();
    let mut ids: Vec<u64> = m.keys().copied().collect();
    ids.sort_unstable();
    ids.iter().map(|id| m[id]).sum()
}
