//! Negative fixture: public items documented, restricted visibility and
//! re-exports exempt.

/// Documented public function.
pub fn documented() {}

pub(crate) fn internal() {}
