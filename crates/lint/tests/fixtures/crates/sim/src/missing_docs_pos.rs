//! Positive fixture: a public item with no doc comment.

pub fn undocumented() {}
