//! Negative fixture: time comes from the engine clock, not the OS.

fn advance(clock: &mut f64, dt: f64) {
    *clock += dt;
}
