//! Fixture: a pragma that suppresses nothing is reported as stale.

// lsds-lint: allow(hot-path-panic) reason="stale"
fn nothing() {}
