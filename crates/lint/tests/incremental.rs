//! End-to-end tests for incremental mode: `--changed <git-ref>` target
//! selection against a real git repo, and the `--cache` content-hash
//! finding cache.

use lsds_lint::report;
use lsds_trace::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn git(dir: &Path, args: &[&str]) {
    let out = Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(args)
        .output()
        .expect("git runs");
    assert!(
        out.status.success(),
        "git {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Runs the built binary; returns (success, stdout, report findings if
/// `--json` was among the args and the file was written).
fn run_lint(root: &Path, extra: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lsds-lint"))
        .arg("--root")
        .arg(root)
        .arg("--config")
        .arg(root.join("lsds-lint.json"))
        .args(extra)
        .output()
        .expect("lsds-lint binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
    )
}

fn report_findings(path: &Path) -> Vec<lsds_lint::Finding> {
    let text = std::fs::read_to_string(path).expect("report written");
    let doc = Json::parse(&text).expect("report parses");
    report::from_json(&doc).expect("schema accepted")
}

/// A fixture tree turned into a one-commit git repo, with one file then
/// modified in the working tree.
fn seeded_repo(name: &str, touch: &str) -> PathBuf {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&tmp);
    copy_tree(&fixture_root(), &tmp);
    git(&tmp, &["init", "-q"]);
    git(&tmp, &["add", "."]);
    git(
        &tmp,
        &[
            "-c",
            "user.email=ci@local",
            "-c",
            "user.name=ci",
            "commit",
            "-q",
            "-m",
            "seed",
        ],
    );
    let target = tmp.join(touch);
    let mut src = std::fs::read_to_string(&target).unwrap();
    src.push_str("\n// touched by incremental test\n");
    std::fs::write(&target, src).unwrap();
    tmp
}

#[test]
fn changed_mode_reports_same_findings_as_full_run_for_that_file() {
    let repo = seeded_repo("changed-mode", "crates/sim/src/det_taint_pos.rs");
    let started = std::time::Instant::now();

    let changed_json = repo.join("changed.json");
    let (ok, _) = run_lint(
        &repo,
        &[
            "--changed",
            "HEAD",
            "--json",
            changed_json.to_str().unwrap(),
        ],
    );
    assert!(!ok, "det_taint_pos carries an error finding");
    assert!(
        started.elapsed().as_secs() < 5,
        "one-file incremental run must finish in under 5 seconds"
    );

    let full_json = repo.join("full.json");
    let (_, _) = run_lint(&repo, &["--json", full_json.to_str().unwrap()]);

    let changed = report_findings(&changed_json);
    let full: Vec<_> = report_findings(&full_json)
        .into_iter()
        .filter(|f| f.file == "crates/sim/src/det_taint_pos.rs")
        .collect();
    assert!(!changed.is_empty());
    assert_eq!(
        changed, full,
        "incremental run must report exactly the full run's findings for the changed file"
    );
}

#[test]
fn changed_mode_with_clean_tree_reports_nothing() {
    let repo = seeded_repo("changed-clean", "crates/sim/src/det_taint_pos.rs");
    git(&repo, &["checkout", "--", "."]);
    let (ok, out) = run_lint(&repo, &["--changed", "HEAD", "--deny"]);
    assert!(ok, "no changed files → no findings → deny passes: {out}");
    assert!(out.contains("0 finding(s)"), "{out}");
}

#[test]
fn cache_replays_findings_and_reacts_to_edits() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cache-mode");
    let _ = std::fs::remove_dir_all(&tmp);
    copy_tree(&fixture_root(), &tmp);
    let cache = tmp.join("lint-cache.json");
    let cache_arg = ["--cache", cache.to_str().unwrap()];

    let json1 = tmp.join("r1.json");
    let (_, out1) = run_lint(
        &tmp,
        &[&cache_arg[..], &["--json", json1.to_str().unwrap()]].concat(),
    );
    assert!(out1.contains("0 from cache"), "cold run: {out1}");

    let json2 = tmp.join("r2.json");
    let (_, out2) = run_lint(
        &tmp,
        &[&cache_arg[..], &["--json", json2.to_str().unwrap()]].concat(),
    );
    assert!(!out2.contains("0 from cache"), "warm run must hit: {out2}");
    assert_eq!(
        report_findings(&json1),
        report_findings(&json2),
        "cached findings must be bit-identical to scanned ones"
    );

    // editing a file invalidates exactly that entry
    let target = tmp.join("crates/sim/src/float_eq_pos.rs");
    let mut src = std::fs::read_to_string(&target).unwrap();
    src.push_str("\n// cache-buster\n");
    std::fs::write(&target, src).unwrap();
    let json3 = tmp.join("r3.json");
    let (_, _) = run_lint(
        &tmp,
        &[&cache_arg[..], &["--json", json3.to_str().unwrap()]].concat(),
    );
    assert_eq!(
        report_findings(&json2),
        report_findings(&json3),
        "an appended comment must not change findings"
    );
}
